#!/usr/bin/env python3
"""Gate CI on the hot-path speedup trajectory.

Compares the detailed-mode speedup of the *fresh* hot-path measurement
(``benchmarks/results/perf_hotpath.json``, written by
``benchmarks/bench_perf_hotpath.py`` on every run, including smoke runs)
against the *last committed* entry of the ``BENCH_hotpath.json`` trajectory,
and fails when a fresh number falls below ``slack * committed``.

Two gates run, both over the same slack:

* the geometric mean across all configurations shared with the committed
  entry, and
* every individual configuration, keyed by ``(workload, architecture,
  num_threads)`` — so a floor regression on one workload cannot hide behind
  the average.  Configurations added since the previous entry (no committed
  counterpart) are reported but not gated; configurations the committed
  entry had but the fresh measurement lacks are skipped likewise (subset
  runs already bail out earlier).

The slack is deliberately generous (default 0.4): CI runners are shared,
single-core and noisy, and the smoke measurement runs at a smaller scale
with one repeat — so absolute throughput is not comparable run-to-run.  The
*ratio* (batched engine over the per-record baseline on the same host, in
the same process, interleaved) is far more stable, and a catastrophic
regression — grouped dispatch silently disabled, plan memoisation broken —
drags it toward 1x, far through any reasonable slack.  Tightening beyond
~0.6 trades signal for flakes.

Usage::

    python scripts/check_hotpath_regression.py [--slack 0.4] \
        [--measurement benchmarks/results/perf_hotpath.json] \
        [--trajectory BENCH_hotpath.json]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _config_key(config: dict, default_threads) -> tuple:
    """``(workload, architecture, num_threads)`` identity of one config.

    Entries recorded before per-config thread counts existed carry the
    entry-level ``num_threads`` for every config.
    """
    return (
        config["workload"],
        config["architecture"],
        config.get("num_threads", default_threads),
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--measurement",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "results" / "perf_hotpath.json",
        help="fresh measurement JSON written by bench_perf_hotpath.py",
    )
    parser.add_argument(
        "--trajectory",
        type=Path,
        default=REPO_ROOT / "BENCH_hotpath.json",
        help="committed trajectory file (last entry is the reference)",
    )
    parser.add_argument(
        "--slack",
        type=float,
        default=0.4,
        help="fail when a fresh speedup < slack * its committed counterpart",
    )
    args = parser.parse_args(argv)

    measurement = json.loads(args.measurement.read_text(encoding="utf-8"))
    trajectory = json.loads(args.trajectory.read_text(encoding="utf-8"))
    entries = trajectory.get("entries", [])
    if not entries:
        print("trajectory has no entries; nothing to gate against")
        return 0
    if measurement.get("workload_subset"):
        print("measurement is a --workloads subset run; not comparable, skipping")
        return 0

    reference = entries[-1]
    committed_configs = {
        _config_key(config, reference.get("num_threads")): config
        for config in reference.get("configs", ())
    }
    fresh_configs = {
        _config_key(config, measurement.get("num_threads")): config
        for config in measurement.get("configs", ())
    }

    failures = []

    # Geomean gate over the shared config set: comparing a fresh geomean
    # that includes configs the committed entry never measured (or vice
    # versa) would mix apples and oranges.
    shared = sorted(set(committed_configs) & set(fresh_configs))
    if shared:
        fresh_gm = math.exp(
            sum(
                math.log(fresh_configs[key]["detailed_speedup"])
                for key in shared
            )
            / len(shared)
        )
        committed_gm = math.exp(
            sum(
                math.log(committed_configs[key]["detailed_speedup"])
                for key in shared
            )
            / len(shared)
        )
    else:
        # Pre-per-config trajectories: fall back to the recorded geomeans.
        fresh_gm = measurement["detailed_speedup_geomean"]
        committed_gm = reference["detailed_speedup_geomean"]
    floor = args.slack * committed_gm
    verdict = "OK" if fresh_gm >= floor else "REGRESSION"
    if fresh_gm < floor:
        failures.append("geomean")
    print(
        f"hot-path detailed-speedup geomean ({len(shared) or 'all'} shared "
        f"configs): fresh {fresh_gm:.2f}x vs committed {committed_gm:.2f}x "
        f"({reference.get('date', '?')}); floor {floor:.2f}x "
        f"(slack {args.slack}) -> {verdict}"
    )

    # Per-config gate.
    for key in sorted(fresh_configs):
        workload, architecture, num_threads = key
        fresh_speedup = fresh_configs[key]["detailed_speedup"]
        coverage = fresh_configs[key].get("vector_coverage", 0.0)
        label = f"{workload}/{architecture}/t{num_threads}"
        committed = committed_configs.get(key)
        if committed is None:
            print(
                f"  {label}: {fresh_speedup:.2f}x, vector coverage "
                f"{coverage:.0%} (new config, not gated)"
            )
            continue
        committed_speedup = committed["detailed_speedup"]
        config_floor = args.slack * committed_speedup
        ok = fresh_speedup >= config_floor
        if not ok:
            failures.append(label)
        print(
            f"  {label}: fresh {fresh_speedup:.2f}x vs committed "
            f"{committed_speedup:.2f}x, floor {config_floor:.2f}x, vector "
            f"coverage {coverage:.0%} -> {'OK' if ok else 'REGRESSION'}"
        )
    for key in sorted(set(committed_configs) - set(fresh_configs)):
        workload, architecture, num_threads = key
        print(
            f"  {workload}/{architecture}/t{num_threads}: in committed entry "
            "but not measured; skipped"
        )

    if failures:
        print(
            f"hot-path regression in: {', '.join(failures)} — the grouped/"
            "vectorised detailed path regressed far beyond runner noise; "
            "profile with REPRO_PROFILE (per-phase wall breakdown in "
            "vector_stats) and see EXPERIMENTS.md for the trajectory",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
