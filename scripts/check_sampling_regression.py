#!/usr/bin/env python3
"""Gate CI on the stratified-sampling quality trajectory.

Compares the *fresh* sampling measurement
(``benchmarks/results/sampling.json``, written by
``benchmarks/bench_sampling.py`` on every run, including smoke runs)
against the last committed ``BENCH_sampling.json`` entry **recorded at the
same scale and seed** — the measured quantities (execution-time error,
detailed-budget ratio, CI coverage) are deterministic in (scale, seed,
thread count), so unlike the wall-clock hot-path gate this one can run with
tight slack.

Gates, all over the shared workload set:

* average stratified error must not grow by more than ``--error-slack``
  percentage points,
* every individual workload's stratified error likewise (so one workload
  cannot hide behind the average),
* the detailed-budget ratio (stratified/periodic) must not grow by more
  than ``--ratio-slack``,
* the 95% CI coverage must not drop by more than ``--coverage-slack``,
* for every fidelity-sweep budget, each workload's achieved error must stay
  within ``budget + --budget-slack`` percentage points — workloads already
  over budget in the committed entry are grandfathered but must not degrade
  by more than ``--error-slack`` — and the controller's detailed-fraction
  ratio versus periodic must not grow by more than ``--ratio-slack`` (and
  must stay below 1.0 at the 2% acceptance budget).

Workloads added since the committed entry are reported but not gated;
subset (``--workloads``) measurements are skipped outright, as is a fresh
measurement whose (scale, seed) no committed entry matches.

Usage::

    python scripts/check_sampling_regression.py [--error-slack 1.0] \
        [--ratio-slack 0.05] [--coverage-slack 0.10] \
        [--measurement benchmarks/results/sampling.json] \
        [--trajectory BENCH_sampling.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--measurement",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "results" / "sampling.json",
        help="fresh measurement JSON written by bench_sampling.py",
    )
    parser.add_argument(
        "--trajectory",
        type=Path,
        default=REPO_ROOT / "BENCH_sampling.json",
        help="committed trajectory file (last same-scale entry is the reference)",
    )
    parser.add_argument(
        "--error-slack",
        type=float,
        default=1.0,
        help="allowed per-workload / average error growth in percentage points",
    )
    parser.add_argument(
        "--ratio-slack",
        type=float,
        default=0.05,
        help="allowed growth of the stratified/periodic detailed-budget ratio",
    )
    parser.add_argument(
        "--coverage-slack",
        type=float,
        default=0.10,
        help="allowed drop of the 95% CI coverage fraction",
    )
    parser.add_argument(
        "--budget-slack",
        type=float,
        default=0.5,
        help="percentage points a fidelity workload may exceed its declared "
             "error budget before it counts as a violation",
    )
    args = parser.parse_args(argv)

    measurement = json.loads(args.measurement.read_text(encoding="utf-8"))
    trajectory = json.loads(args.trajectory.read_text(encoding="utf-8"))
    entries = trajectory.get("entries", [])
    if not entries:
        print("trajectory has no entries; nothing to gate against")
        return 0
    if measurement.get("workload_subset"):
        print("measurement is a --workloads subset run; not comparable, skipping")
        return 0

    scale, seed = measurement.get("scale"), measurement.get("seed")
    matching = [
        entry for entry in entries
        if entry.get("scale") == scale and entry.get("seed") == seed
    ]
    if not matching:
        print(
            f"no committed entry at scale={scale} seed={seed}; "
            "nothing comparable, skipping"
        )
        return 0
    reference = matching[-1]

    failures = []

    fresh_avg = measurement["stratified_avg_error_percent"]
    committed_avg = reference["stratified_avg_error_percent"]
    ceiling = committed_avg + args.error_slack
    verdict = "OK" if fresh_avg <= ceiling else "REGRESSION"
    if fresh_avg > ceiling:
        failures.append("average error")
    print(
        f"stratified average error (scale={scale}): fresh {fresh_avg:.2f}% vs "
        f"committed {committed_avg:.2f}% ({reference.get('date', '?')}); "
        f"ceiling {ceiling:.2f}% -> {verdict}"
    )

    fresh_ratio = measurement.get("detail_ratio")
    committed_ratio = reference.get("detail_ratio")
    if fresh_ratio is not None and committed_ratio is not None:
        ceiling = committed_ratio + args.ratio_slack
        ok = fresh_ratio <= ceiling
        if not ok:
            failures.append("detailed-budget ratio")
        print(
            f"detailed-budget ratio: fresh {fresh_ratio:.2f} vs committed "
            f"{committed_ratio:.2f}; ceiling {ceiling:.2f} -> "
            f"{'OK' if ok else 'REGRESSION'}"
        )

    fresh_coverage = measurement.get("ci_coverage")
    committed_coverage = reference.get("ci_coverage")
    if fresh_coverage is not None and committed_coverage is not None:
        floor = committed_coverage - args.coverage_slack
        ok = fresh_coverage >= floor
        if not ok:
            failures.append("ci coverage")
        print(
            f"95% CI coverage: fresh {fresh_coverage:.2f} vs committed "
            f"{committed_coverage:.2f}; floor {floor:.2f} -> "
            f"{'OK' if ok else 'REGRESSION'}"
        )

    committed_rows = {
        row["workload"]: row for row in reference.get("workloads", ())
    }
    for row in measurement.get("workloads", ()):
        name = row["workload"]
        fresh_error = row["stratified_error_percent"]
        committed_row = committed_rows.get(name)
        if committed_row is None:
            print(f"  {name}: {fresh_error:.2f}% (new workload, not gated)")
            continue
        committed_error = committed_row["stratified_error_percent"]
        ceiling = committed_error + args.error_slack
        ok = fresh_error <= ceiling
        if not ok:
            failures.append(name)
        print(
            f"  {name}: fresh {fresh_error:.2f}% vs committed "
            f"{committed_error:.2f}%, ceiling {ceiling:.2f}% -> "
            f"{'OK' if ok else 'REGRESSION'}"
        )
    measured = {row["workload"] for row in measurement.get("workloads", ())}
    for name in sorted(set(committed_rows) - measured):
        print(f"  {name}: in committed entry but not measured; skipped")

    fresh_fidelity = measurement.get("fidelity") or {}
    committed_fidelity = reference.get("fidelity") or {}
    committed_sweep = {
        point["error_budget"]: point
        for point in committed_fidelity.get("sweep", ())
    }
    if fresh_fidelity and not committed_sweep:
        print("fidelity sweep: no committed sweep to gate against; skipped")
    for point in fresh_fidelity.get("sweep", ()) if committed_sweep else ():
        budget = point["error_budget"]
        budget_pct = budget * 100.0
        committed_point = committed_sweep.get(budget)
        committed_fid_rows = {
            row["workload"]: row
            for row in (committed_point or {}).get("workloads", ())
        }
        print(f"fidelity sweep, error budget {budget_pct:.0f}%:")
        for row in point.get("workloads", ()):
            name, fresh_error = row["workload"], row["error_percent"]
            ceiling = budget_pct + args.budget_slack
            committed_row = committed_fid_rows.get(name)
            grandfathered = ""
            if committed_row is not None and (
                committed_row["error_percent"] > ceiling
            ):
                # A workload the committed entry already records over budget
                # (an irreducible model-mismatch case) is held to
                # no-worse-than-committed instead of the absolute bound.
                ceiling = committed_row["error_percent"] + args.error_slack
                grandfathered = " (over-budget in committed entry)"
            ok = fresh_error <= ceiling
            if not ok:
                failures.append(f"fidelity {budget_pct:.0f}% {name}")
            print(
                f"  {name}: {fresh_error:.2f}% vs ceiling {ceiling:.2f}%"
                f"{grandfathered} -> {'OK' if ok else 'REGRESSION'}"
            )
        fresh_ratio = point.get("detail_ratio_vs_periodic")
        committed_ratio = (committed_point or {}).get("detail_ratio_vs_periodic")
        if fresh_ratio is not None and committed_ratio is not None:
            ceiling = committed_ratio + args.ratio_slack
            if budget == 0.02:
                # The acceptance criterion: at the 2% budget the controller
                # must stay strictly cheaper than periodic sampling.
                ceiling = min(ceiling, 1.0)
            ok = fresh_ratio <= ceiling
            if not ok:
                failures.append(f"fidelity {budget_pct:.0f}% detail ratio")
            print(
                f"  detail ratio vs periodic: fresh {fresh_ratio:.2f} vs "
                f"committed {committed_ratio:.2f}; ceiling {ceiling:.2f} -> "
                f"{'OK' if ok else 'REGRESSION'}"
            )

    if failures:
        print(
            f"sampling-quality regression in: {', '.join(failures)} — the "
            "stratified estimator drifted beyond the committed trajectory; "
            "inspect benchmarks/results/sampling.{json,txt} and see "
            "EXPERIMENTS.md for the recording procedure",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
