#!/usr/bin/env python
"""Cluster-scale sweep demo for the multi-host dispatch transport.

Runs the full paper grid — all 19 benchmarks of Table I x both Table II
architectures, sampled + detailed baseline — twice: once on the in-process
``SerialBackend`` and once through :class:`repro.exp.hosts.MultiHostBackend`
with (by default) two simulated hosts of two workers each, every worker a
connect-back TCP subprocess speaking the compressed frame protocol.  Both
runs persist into on-disk :class:`ResultStore` caches, and the demo asserts
the stores are **byte-identical** (failure diagnostics excluded, per the
store convention) — the multi-host transport's headline guarantee.

Usage::

    PYTHONPATH=src python scripts/multihost_sweep_demo.py
    PYTHONPATH=src python scripts/multihost_sweep_demo.py \\
        --hosts local0:4,local1:4 --scale 0.05       # bigger grid
    PYTHONPATH=src python scripts/multihost_sweep_demo.py \\
        --hosts big0:16,big1:16 --listen 0.0.0.0:9000  # real SSH hosts

Paper scale is ``--scale 1.0``; the default (0.01) keeps the demo in the
minutes range on a laptop while still covering every benchmark and both
architectures.  Exit code 0 means the sweep completed and the stores
matched.
"""

from __future__ import annotations

import argparse
import hashlib
import pathlib
import sys
import tempfile
import time

from repro.arch.config import high_performance_config, low_power_config
from repro.core.config import lazy_config
from repro.exp import (
    ExperimentSpec,
    MultiHostBackend,
    ResultStore,
    SerialBackend,
    run_experiments,
)
from repro.workloads.registry import list_workloads


def build_grid(scale: float, seed: int, highperf_threads: int, lowpower_threads: int,
               benchmarks=None):
    """Sampled + baseline specs for the benchmarks x both architectures.

    ``benchmarks`` defaults to all 19 of Table I; the smoke tests pass a
    subset to keep the double (serial + multi-host) sweep fast.
    """
    architectures = (
        (high_performance_config(), highperf_threads),
        (low_power_config(), lowpower_threads),
    )
    specs = []
    for benchmark in benchmarks if benchmarks is not None else list_workloads():
        for architecture, threads in architectures:
            spec = ExperimentSpec(
                benchmark=benchmark,
                num_threads=threads,
                scale=scale,
                trace_seed=seed,
                architecture=architecture,
                config=lazy_config(),
            )
            specs.extend([spec, spec.baseline()])
    return specs


def store_fingerprint(directory: pathlib.Path):
    """(entry count, sha256 over sorted result entries); errors excluded."""
    accumulator = hashlib.sha256()
    count = 0
    for path in sorted(directory.rglob("*.json")):
        if path.name.startswith(".") or path.name.endswith(".error.json"):
            continue
        accumulator.update(path.relative_to(directory).as_posix().encode())
        accumulator.update(path.read_bytes())
        count += 1
    return count, accumulator.hexdigest()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--hosts", default="local0:2,local1:2",
                        help="host budgets (default two simulated local "
                             "hosts, two workers each)")
    parser.add_argument("--listen", default=None,
                        help="listener bind address: PORT or HOST:PORT "
                             "(default: ephemeral loopback)")
    parser.add_argument("--scale", type=float, default=0.01,
                        help="workload scale; 1.0 is paper scale "
                             "(default 0.01)")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmark subset "
                             "(default: all 19 of Table I)")
    parser.add_argument("--batch", default=None,
                        help="specs per dispatch frame for the multi-host "
                             "run: N, 'adaptive' or 'adaptive:N' "
                             "(default: one spec at a time)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--threads-highperf", type=int, default=8)
    parser.add_argument("--threads-lowpower", type=int, default=4)
    parser.add_argument("--no-compress", action="store_true",
                        help="disable zlib frame compression")
    parser.add_argument("--keep", metavar="DIR", default=None,
                        help="keep the two stores under DIR instead of a "
                             "temporary directory")
    args = parser.parse_args(argv)

    from repro.exp import parse_batch

    try:
        parse_batch(args.batch)  # fail now, not after the serial reference run
    except ValueError as exc:
        parser.error(str(exc))
    if args.benchmarks:
        benchmarks = [part.strip() for part in args.benchmarks.split(",")
                      if part.strip()]
        unknown = sorted(set(benchmarks) - set(list_workloads()))
        if unknown:
            parser.error(f"unknown benchmark(s): {', '.join(unknown)} "
                         "(see 'repro list')")
    else:
        benchmarks = list_workloads()
    specs = build_grid(args.scale, args.seed,
                       args.threads_highperf, args.threads_lowpower,
                       benchmarks=benchmarks)
    unique = len({spec.content_key() for spec in specs})
    print(f"grid: {len(benchmarks)} benchmarks x 2 architectures "
          f"-> {unique} unique experiments at scale {args.scale}")

    from repro.exp.hosts import parse_listen

    listen_host, listen_port = parse_listen(args.listen)

    with tempfile.TemporaryDirectory() as scratch:
        root = pathlib.Path(args.keep) if args.keep else pathlib.Path(scratch)
        serial_dir, multi_dir = root / "serial", root / "multihost"

        started = time.monotonic()
        run_experiments(specs, backend=SerialBackend(),
                        store=ResultStore(serial_dir))
        serial_seconds = time.monotonic() - started
        print(f"serial reference: {serial_seconds:.1f}s")

        multi_store = ResultStore(multi_dir)
        backend = MultiHostBackend(
            args.hosts,
            listen_host=listen_host,
            listen_port=listen_port,
            compress=not args.no_compress,
            batch=args.batch,
            store=multi_store,
        )
        started = time.monotonic()
        # The same store object is attached to the backend (streaming) and
        # passed to the driver, so the identity check skips re-persisting.
        run_experiments(specs, backend=backend, store=multi_store)
        multi_seconds = time.monotonic() - started
        print(f"multi-host ({args.hosts}): {multi_seconds:.1f}s  "
              f"stats={backend.stats}")
        for host, stats in sorted(backend.host_stats.items()):
            print(f"  {host}: {stats}")

        serial_count, serial_digest = store_fingerprint(serial_dir)
        multi_count, multi_digest = store_fingerprint(multi_dir)
        print(f"serial store   : {serial_count} entries, sha256 {serial_digest}")
        print(f"multihost store: {multi_count} entries, sha256 {multi_digest}")
        if serial_count != unique or (serial_count, serial_digest) != (
            multi_count, multi_digest
        ):
            print("FAIL: stores differ")
            return 1
        print("PASS: multi-host store is byte-identical to the serial run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
