#!/usr/bin/env python
"""Dispatch round-trip amortisation microbenchmark (``BENCH_dispatch.json``).

TaskPoint makes each simulation cheap, so at cluster scale the orchestrator's
per-spec dispatch round-trips — not the simulations — become the bottleneck.
This benchmark quantifies that: it runs one grid of sub-second specs through
the :class:`~repro.exp.distributed.AsyncWorkerBackend` under a **simulated
per-frame link latency** (the worker-side ``REPRO_EXP_WORKER_DELAY`` hook
sleeps around every frame read/write, standing in for a real network RTT)
once per batch mode — ``1`` (the historical spec-at-a-time dispatch), fixed
sizes, and ``adaptive`` — and records, per mode:

* **dispatch frames per spec** (how many supervisor->worker round-trips the
  grid cost; 1.0 unbatched, 1/N at a fixed batch of N),
* **wall-clock seconds and specs/second throughput**, and
* the speedup over the unbatched dispatch.

A second section measures the worker-side **warmed-trace memo**: a grid of
specs that revisit the same (benchmark, scale, seed) traces under varying
thread counts — the normal shape of a ``run_batch`` frame — run once with
the per-process memo enabled (default) and once with it disabled
(``REPRO_EXP_TRACE_MEMO=0``, every spec regenerates and re-warms its trace
and plan caches from scratch).  The delta is the per-spec warm-up cost the
memo removes; no link latency is simulated here, so the measurement
isolates worker-side compute.

Every run appends one entry to the repository-root ``BENCH_dispatch.json``
trajectory file (``--output`` overrides the path) and prints the
frames-per-spec table quoted in ``EXPERIMENTS.md``.  ``--smoke`` shrinks the
grid and delay for CI, where the point is exercising the path, not the
numbers.

Usage::

    PYTHONPATH=src python scripts/dispatch_bench.py
    PYTHONPATH=src python scripts/dispatch_bench.py --delay 0.1 --specs 64
    PYTHONPATH=src python scripts/dispatch_bench.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time
from datetime import datetime, timezone

from repro.core.config import lazy_config
from repro.exp import AsyncWorkerBackend, ExperimentSpec, parse_batch
from repro.exp.runner import TRACE_MEMO_ENV
from repro.exp.worker import DELAY_ENV

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_dispatch.json"

#: Cheap, structurally different workloads; cycled over seeds so every spec
#: is unique (no dedup) and each costs well under a second at the bench scale.
BENCHMARKS = ("swaptions", "vector-operation", "histogram", "reduction")

SCALE = 0.004


def build_specs(count: int):
    """``count`` unique sub-second sampled specs (the amortisation regime)."""
    specs = []
    seed = 0
    while len(specs) < count:
        seed += 1
        for benchmark in BENCHMARKS:
            if len(specs) >= count:
                break
            specs.append(ExperimentSpec(
                benchmark, num_threads=2, scale=SCALE, trace_seed=seed,
                config=lazy_config(),
            ))
    return specs


def build_repeated_specs(count: int):
    """``count`` unique specs revisiting the same four warmed traces.

    The thread count varies per lap while (benchmark, scale, seed) repeat,
    so with the memo on only the first lap generates traces; every later
    spec reuses the warmed columns (including their plan caches).
    """
    specs = []
    threads = 1
    while len(specs) < count:
        threads += 1
        for benchmark in BENCHMARKS:
            if len(specs) >= count:
                break
            specs.append(ExperimentSpec(
                benchmark, num_threads=threads, scale=SCALE, trace_seed=1,
                config=lazy_config(),
            ))
    return specs


def measure_trace_memo(specs, workers: int, batch):
    """Run ``specs`` with the warmed-trace memo on and off; return the record."""
    record = {"specs": len(specs), "batch": str(batch)}
    for label, env in (("memo_on", {}), ("memo_off", {TRACE_MEMO_ENV: "0"})):
        backend = AsyncWorkerBackend(
            num_workers=workers, batch=batch, worker_env=dict(env),
        )
        started = time.monotonic()
        backend.run(specs)
        wall = time.monotonic() - started
        record[label] = {
            "wall_s": wall,
            "wall_per_spec_ms": wall * 1000.0 / len(specs),
            "specs_per_s": len(specs) / wall,
        }
    record["memo_speedup"] = (
        record["memo_off"]["wall_s"] / record["memo_on"]["wall_s"]
    )
    return record


def measure_mode(batch, specs, workers: int, delay: float):
    """Run ``specs`` once with ``batch`` dispatch; return the mode record."""
    backend = AsyncWorkerBackend(
        num_workers=workers,
        batch=batch,
        worker_env={DELAY_ENV: str(delay)},
    )
    started = time.monotonic()
    backend.run(specs)
    wall = time.monotonic() - started
    dispatch_frames = backend.stats.get("dispatch_frames", 0)
    return {
        "batch": str(batch),
        "dispatch_frames": dispatch_frames,
        "batch_frames": backend.stats.get("batch_frames", 0),
        "max_batch": backend.stats.get("max_batch", 0),
        "frames_per_spec": dispatch_frames / len(specs),
        "wall_s": wall,
        "specs_per_s": len(specs) / wall,
    }


def append_entry(path: pathlib.Path, entry) -> None:
    """Append ``entry`` to the trajectory file (created on first run)."""
    payload = {"benchmark": "dispatch", "entries": []}
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(existing.get("entries"), list):
                payload = existing
        except (ValueError, OSError):
            pass  # a corrupt trajectory file starts over rather than wedging
    payload["entries"].append(entry)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n",
                    encoding="utf-8")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--specs", type=int, default=32,
                        help="unique sub-second specs in the grid (default 32)")
    parser.add_argument("--delay", type=float, default=0.05,
                        help="simulated per-frame link latency in seconds "
                             "(default 0.05)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (default 1: the per-worker "
                             "round-trip cost is what is being measured)")
    parser.add_argument("--batches", default="1,4,16,adaptive",
                        help="comma-separated batch modes to measure "
                             "(default '1,4,16,adaptive')")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT),
                        help="trajectory JSON to append to "
                             "(default: repo-root BENCH_dispatch.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: tiny grid and delay, same code path")
    args = parser.parse_args(argv)

    if args.smoke:
        args.specs = min(args.specs, 8)
        args.delay = min(args.delay, 0.02)

    batches = []
    for part in args.batches.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            parse_batch(part)  # usage error now, not mid-measurement
        except ValueError as exc:
            parser.error(str(exc))
        batches.append(part if part.startswith("adaptive") else int(part))
    if not batches:
        print("error: no batch modes to measure", file=sys.stderr)
        return 2

    specs = build_specs(args.specs)
    print(f"dispatch bench: {len(specs)} unique specs, "
          f"{args.workers} worker(s), {args.delay * 1000:.0f} ms/frame "
          f"simulated link latency")

    modes = []
    for batch in batches:
        mode = measure_mode(batch, specs, args.workers, args.delay)
        modes.append(mode)
        print(f"  batch={mode['batch']:<10s} "
              f"dispatch_frames={mode['dispatch_frames']:<4d} "
              f"frames/spec={mode['frames_per_spec']:.3f}  "
              f"wall={mode['wall_s']:.2f}s  "
              f"throughput={mode['specs_per_s']:.1f} specs/s")

    # Warmed-trace memo: repeated-workload grid, no simulated link latency
    # (the point is worker-side warm-up compute, not round-trips).
    memo_specs = build_repeated_specs(args.specs)
    trace_memo = measure_trace_memo(memo_specs, args.workers, batch=16)
    print(f"  warmed-trace memo ({trace_memo['specs']} repeated-workload "
          f"specs, batch=16):")
    for label in ("memo_on", "memo_off"):
        mode = trace_memo[label]
        print(f"    {label:<9s} wall={mode['wall_s']:.2f}s  "
              f"{mode['wall_per_spec_ms']:.1f} ms/spec  "
              f"throughput={mode['specs_per_s']:.1f} specs/s")
    print(f"    memo speedup: {trace_memo['memo_speedup']:.2f}x "
          f"({trace_memo['memo_off']['wall_per_spec_ms'] - trace_memo['memo_on']['wall_per_spec_ms']:.1f} "
          f"ms/spec warm-up removed)")

    # The speedup column only means what its name says when the unbatched
    # mode was actually measured; without it the field is omitted (null)
    # rather than silently re-baselined onto some batched mode.
    baseline = next((m for m in modes if m["batch"] == "1"), None)
    for mode in modes:
        mode["speedup_vs_unbatched"] = (
            baseline["wall_s"] / mode["wall_s"] if baseline is not None
            else None
        )

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "smoke": bool(args.smoke),
        "delay_s": args.delay,
        "specs": len(specs),
        "workers": args.workers,
        "scale": SCALE,
        "modes": modes,
        "trace_memo": trace_memo,
    }
    output = pathlib.Path(args.output)
    append_entry(output, entry)
    print(f"recorded -> {output}")

    if baseline is not None:
        best = max((m for m in modes if m["batch"] != "1"),
                   key=lambda m: m["speedup_vs_unbatched"], default=None)
        if best is not None:
            reduction = baseline["frames_per_spec"] / max(
                best["frames_per_spec"], 1e-9
            )
            print(f"best mode batch={best['batch']}: "
                  f"{reduction:.1f}x fewer dispatch frames, "
                  f"{best['speedup_vs_unbatched']:.2f}x wall-clock speedup "
                  f"over spec-at-a-time dispatch")
    return 0


if __name__ == "__main__":
    sys.exit(main())
