"""Development diagnostic: landscape of variation, error and speedup.

Not part of the library; used while calibrating the workload models against
the paper's qualitative results.
"""

import sys
import time

from repro import get_workload, list_workloads, lazy_config, periodic_config
from repro.analysis.accuracy import evaluate_benchmark
from repro.analysis.variation import ipc_variation
from repro.sim.simulator import simulate

SCALE = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
THREADS = int(sys.argv[2]) if len(sys.argv) > 2 else 8
NAMES = sys.argv[3].split(",") if len(sys.argv) > 3 else list_workloads()

print(f"scale={SCALE} threads={THREADS}")
print(f"{'benchmark':38s} {'n':>5s} {'p5':>6s} {'p95':>6s} {'ipc':>5s} "
      f"{'errP':>6s} {'spdP':>6s} {'errL':>6s} {'spdL':>6s} {'res':>4s} {'sec':>5s}")
for name in NAMES:
    t0 = time.time()
    trace = get_workload(name).generate(scale=SCALE, seed=1)
    detailed = simulate(trace, num_threads=THREADS)
    var = ipc_variation(detailed)
    per = evaluate_benchmark(trace, THREADS, config=periodic_config())
    lazy = evaluate_benchmark(trace, THREADS, config=lazy_config())
    print(f"{name:38s} {len(trace):5d} {var.box.percentile_5:6.1f} {var.box.percentile_95:6.1f} "
          f"{detailed.average_ipc()/THREADS:5.2f} "
          f"{per.error_percent:6.2f} {per.speedup:6.1f} "
          f"{lazy.error_percent:6.2f} {lazy.speedup:6.1f} {per.resamples:4d} {time.time()-t0:5.1f}")
