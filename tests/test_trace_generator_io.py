"""Unit tests for the trace builder and trace serialisation."""

import pytest

from repro.trace.generator import TraceBuilder
from repro.trace.io import load_trace, save_trace
from repro.trace.records import MemoryEvent, make_record
from repro.workloads.registry import get_workload


class TestTraceBuilder:
    def test_instance_ids_are_dense(self):
        builder = TraceBuilder("test", seed=1)
        ids = [builder.add_task("t", instructions=10) for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]
        assert builder.num_instances == 5
        assert builder.last_instance_id() == 4

    def test_next_instance_id(self):
        builder = TraceBuilder("test")
        assert builder.next_instance_id == 0
        assert builder.last_instance_id() is None
        builder.add_task("t", instructions=1)
        assert builder.next_instance_id == 1

    def test_dependency_must_exist(self):
        builder = TraceBuilder("test")
        builder.add_task("t", instructions=1)
        with pytest.raises(ValueError):
            builder.add_task("t", instructions=1, depends_on=[5])

    def test_metadata_recorded(self):
        builder = TraceBuilder("test", seed=42)
        builder.set_metadata("problem_size", 128)
        trace = builder.build()
        assert trace.metadata["seed"] == 42
        assert trace.metadata["problem_size"] == 128

    def test_add_record_renumbers(self):
        builder = TraceBuilder("test")
        builder.add_task("a", instructions=5)
        foreign = make_record(99, "b", 50)
        new_id = builder.add_record(foreign)
        assert new_id == 1
        trace = builder.build()
        assert trace[1].task_type == "b"
        assert trace[1].instance_id == 1

    def test_same_seed_same_trace(self):
        first = get_workload("n-body").generate(scale=0.003, seed=11)
        second = get_workload("n-body").generate(scale=0.003, seed=11)
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert a.task_type == b.task_type
            assert a.instructions == b.instructions
            assert a.depends_on == b.depends_on

    def test_different_seed_different_trace(self):
        first = get_workload("freqmine").generate(scale=0.01, seed=1)
        second = get_workload("freqmine").generate(scale=0.01, seed=2)
        assert [r.instructions for r in first] != [r.instructions for r in second]


class TestTraceIO:
    def _sample_trace(self):
        builder = TraceBuilder("io-test", seed=3)
        region = builder.allocator.allocate(4096)
        builder.set_metadata("purpose", "roundtrip")
        builder.add_task(
            "alpha",
            instructions=100,
            memory_events=[MemoryEvent(address=region.base, weight=2, is_write=True)],
        )
        builder.add_task("beta", instructions=200, depends_on=[0])
        return builder.build()

    def test_roundtrip_json(self, tmp_path):
        trace = self._sample_trace()
        path = save_trace(trace, tmp_path / "trace.json")
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.metadata["purpose"] == "roundtrip"
        assert len(loaded) == len(trace)
        assert loaded[0].task_type == "alpha"
        assert loaded[0].blocks[0].memory_events[0].is_write is True
        assert loaded[1].depends_on == (0,)

    def test_roundtrip_gzip(self, tmp_path):
        trace = self._sample_trace()
        path = save_trace(trace, tmp_path / "trace.json.gz")
        loaded = load_trace(path)
        assert len(loaded) == 2
        assert loaded[1].instructions == 200

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99, "name": "x", "records": []}')
        with pytest.raises(ValueError):
            load_trace(path)

    def test_roundtrip_preserves_statistics(self, tmp_path):
        trace = get_workload("reduction").generate(scale=0.004, seed=5)
        path = save_trace(trace, tmp_path / "reduction.json")
        loaded = load_trace(path)
        assert loaded.statistics() == trace.statistics()
        assert loaded.critical_path_length() == trace.critical_path_length()
