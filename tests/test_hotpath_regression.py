"""Tests for scripts/check_hotpath_regression.py (per-config gating)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = (
    Path(__file__).parent.parent / "scripts" / "check_hotpath_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_hotpath_regression", _SCRIPT)
check = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check)


def _config(workload, arch, threads, speedup, coverage=0.0):
    return {
        "workload": workload,
        "architecture": arch,
        "num_threads": threads,
        "detailed_speedup": speedup,
        "vector_coverage": coverage,
    }


def _write(tmp_path, measurement, entries):
    measurement_path = tmp_path / "perf_hotpath.json"
    trajectory_path = tmp_path / "BENCH_hotpath.json"
    measurement_path.write_text(json.dumps(measurement), encoding="utf-8")
    trajectory_path.write_text(
        json.dumps({"schema": 1, "benchmark": "hotpath", "entries": entries}),
        encoding="utf-8",
    )
    return [
        "--measurement", str(measurement_path),
        "--trajectory", str(trajectory_path),
        "--slack", "0.5",
    ]


def _entry(configs, geomean, threads=8):
    return {
        "configs": configs,
        "detailed_speedup_geomean": geomean,
        "num_threads": threads,
        "date": "2026-01-01",
    }


def test_passes_when_all_configs_hold(tmp_path):
    committed = [_config("a", "hp", 8, 4.0), _config("b", "hp", 8, 4.0)]
    fresh = {
        "configs": [_config("a", "hp", 8, 3.8), _config("b", "hp", 8, 4.1)],
        "detailed_speedup_geomean": 3.95,
    }
    assert check.main(_write(tmp_path, fresh, [_entry(committed, 4.0)])) == 0


def test_per_config_floor_not_hidden_by_geomean(tmp_path):
    # One config collapses to 1x while the other soars: the geomean still
    # clears the slack, but the per-config gate must catch the collapse.
    committed = [_config("a", "hp", 8, 4.0), _config("b", "hp", 8, 4.0)]
    fresh = {
        "configs": [_config("a", "hp", 8, 1.0), _config("b", "hp", 8, 9.0)],
        "detailed_speedup_geomean": 3.0,
    }
    assert check.main(_write(tmp_path, fresh, [_entry(committed, 4.0)])) == 1


def test_new_configs_tolerated_and_not_gated(tmp_path):
    # A config added since the committed entry has no reference; even an
    # abysmal speedup there must not fail the gate (it is reported only),
    # and it must not drag the shared-config geomean either.
    committed = [_config("a", "hp", 8, 4.0)]
    fresh = {
        "configs": [
            _config("a", "hp", 8, 4.0),
            _config("a", "hp", 64, 1.1, coverage=0.5),
        ],
        "detailed_speedup_geomean": 2.1,
    }
    assert check.main(_write(tmp_path, fresh, [_entry(committed, 4.0)])) == 0


def test_same_workload_different_threads_are_distinct_configs(tmp_path):
    committed = [_config("a", "hp", 8, 4.0), _config("a", "hp", 32, 4.0)]
    fresh = {
        "configs": [_config("a", "hp", 8, 4.0), _config("a", "hp", 32, 1.0)],
        "detailed_speedup_geomean": 2.0,
    }
    assert check.main(_write(tmp_path, fresh, [_entry(committed, 4.0)])) == 1


def test_legacy_entry_without_per_config_threads(tmp_path):
    # Entries recorded before per-config thread counts carry only the
    # entry-level num_threads; those configs must key against it.
    committed = [
        {"workload": "a", "architecture": "hp", "detailed_speedup": 4.0,
         "vector_coverage": 0.0},
    ]
    fresh = {
        "configs": [_config("a", "hp", 8, 3.9)],
        "detailed_speedup_geomean": 3.9,
        "num_threads": 8,
    }
    assert check.main(_write(tmp_path, fresh, [_entry(committed, 4.0)])) == 0


def test_subset_runs_skip(tmp_path):
    committed = [_config("a", "hp", 8, 4.0)]
    fresh = {
        "configs": [_config("a", "hp", 8, 0.5)],
        "detailed_speedup_geomean": 0.5,
        "workload_subset": True,
    }
    assert check.main(_write(tmp_path, fresh, [_entry(committed, 4.0)])) == 0
