"""Unit tests for synthetic memory-access pattern generators."""

import random

import pytest

from repro.trace.patterns import (
    CACHE_LINE,
    AddressSpace,
    AddressSpaceAllocator,
    random_accesses,
    reuse_accesses,
    strided_accesses,
)


class TestAddressSpace:
    def test_offset_wraps_within_region(self):
        region = AddressSpace(base=1000, size=256)
        assert region.offset(0) == 1000
        assert region.offset(255) == 1255
        assert region.offset(256) == 1000

    def test_slice_inherits_shared_flag(self):
        region = AddressSpace(base=0, size=4096, shared=True)
        sub = region.slice(128, 512)
        assert sub.shared is True
        assert sub.base == 128
        assert region.slice(0, 64, shared=False).shared is False

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AddressSpace(base=-1, size=10)
        with pytest.raises(ValueError):
            AddressSpace(base=0, size=0)
        with pytest.raises(ValueError):
            AddressSpace(base=0, size=64).slice(0, 0)


class TestAllocator:
    def test_allocations_do_not_overlap(self):
        allocator = AddressSpaceAllocator()
        first = allocator.allocate(1000)
        second = allocator.allocate(1000)
        assert first.base + first.size <= second.base

    def test_alignment(self):
        allocator = AddressSpaceAllocator()
        region = allocator.allocate(100)
        assert region.base % CACHE_LINE == 0
        assert region.size % CACHE_LINE == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            AddressSpaceAllocator().allocate(0)


class TestPatterns:
    def setup_method(self):
        self.region = AddressSpace(base=0, size=64 * 1024)
        self.rng = random.Random(7)

    def test_strided_addresses_advance_by_stride(self):
        events = strided_accesses(
            self.region, count=10, total_accesses=100, stride=128, rng=self.rng
        )
        addresses = [event.address for event in events]
        assert addresses == [i * 128 for i in range(10)]
        assert all(event.weight == 10 for event in events)

    def test_strided_empty_when_count_zero(self):
        assert strided_accesses(self.region, count=0, total_accesses=10) == []

    def test_random_accesses_stay_in_region(self):
        events = random_accesses(self.region, count=50, total_accesses=500, rng=self.rng)
        assert len(events) == 50
        for event in events:
            assert self.region.base <= event.address < self.region.base + self.region.size
            assert event.address % CACHE_LINE == 0

    def test_reuse_accesses_touch_few_lines(self):
        events = reuse_accesses(
            self.region, count=100, total_accesses=1000, hot_lines=4, rng=self.rng
        )
        lines = {event.address // CACHE_LINE for event in events}
        assert len(lines) <= 4

    def test_write_fraction_produces_writes(self):
        events = random_accesses(
            self.region, count=200, total_accesses=200, write_fraction=1.0, rng=self.rng
        )
        assert all(event.is_write for event in events)
        events = random_accesses(
            self.region, count=200, total_accesses=200, write_fraction=0.0, rng=self.rng
        )
        assert not any(event.is_write for event in events)

    def test_shared_region_marks_events_shared(self):
        shared = AddressSpace(base=0, size=4096, shared=True)
        events = strided_accesses(shared, count=5, total_accesses=5, rng=self.rng)
        assert all(event.shared for event in events)

    def test_weight_at_least_one(self):
        events = random_accesses(self.region, count=10, total_accesses=3, rng=self.rng)
        assert all(event.weight >= 1 for event in events)
