"""Tests for the command-line interface."""

import pytest

from repro.cli import _resolve_sampling_args, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_simulate_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["simulate", "cholesky"])
        assert args.benchmark == "cholesky"
        assert args.threads == 8
        assert args.mode == "sampled"
        # Sampling flags parse to None sentinels; the resolution step picks
        # the engine and fills in the real defaults.
        assert args.policy is None
        _resolve_sampling_args(parser, args)
        assert args.policy == "periodic"
        assert args.period == 250
        assert args.warmup == 2
        assert args.history == 4

    def test_compare_lazy_policy(self):
        args = build_parser().parse_args(
            ["compare", "dedup", "--policy", "lazy", "--threads", "4"]
        )
        assert args.policy == "lazy"
        assert args.threads == 4

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSamplingFlagValidation:
    """Satellite: sampling flags are validated at argparse time."""

    def _expect_usage_error(self, argv, capsys, needle):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        assert needle in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "1.5", "-0.1", "abc"])
    def test_budget_out_of_range_rejected(self, value, capsys):
        self._expect_usage_error(
            ["compare", "swaptions", "--mode", "stratified", "--budget", value],
            capsys, "--budget",
        )

    @pytest.mark.parametrize("value", ["0", "1", "1.5", "nan"])
    def test_error_budget_out_of_range_rejected(self, value, capsys):
        # Unlike --budget, --error-budget excludes 1: a 100% error budget
        # is meaningless.
        self._expect_usage_error(
            ["compare", "swaptions", "--mode", "fidelity",
             "--error-budget", value],
            capsys, "--error-budget",
        )

    @pytest.mark.parametrize("flag,value", [
        ("--period", "0"), ("--warmup", "-1"), ("--history", "0"),
    ])
    def test_integer_flags_below_minimum_rejected(self, flag, value, capsys):
        self._expect_usage_error(
            ["compare", "swaptions", flag, value], capsys, flag,
        )

    def test_period_rejected_for_lazy_policy(self, capsys):
        self._expect_usage_error(
            ["compare", "swaptions", "--policy", "lazy", "--period", "100"],
            capsys, "--period",
        )

    def test_error_budget_rejected_for_periodic_policy(self, capsys):
        self._expect_usage_error(
            ["compare", "swaptions", "--error-budget", "0.02"],
            capsys, "--error-budget",
        )

    def test_period_rejected_for_fidelity_mode(self, capsys):
        self._expect_usage_error(
            ["compare", "swaptions", "--mode", "fidelity", "--period", "50"],
            capsys, "--period",
        )

    def test_warmup_rejected_for_stratified_mode(self, capsys):
        self._expect_usage_error(
            ["grid", "--benchmarks", "swaptions", "--mode", "stratified",
             "--warmup", "2"],
            capsys, "--warmup",
        )

    def test_sampling_flags_rejected_for_detailed_mode(self, capsys):
        self._expect_usage_error(
            ["simulate", "cholesky", "--mode", "detailed", "--period", "100"],
            capsys, "--period",
        )

    def test_conflicting_mode_and_policy_rejected(self, capsys):
        # simulate has distinct --mode and --policy flags; contradictory
        # engines are a usage error.  (On compare/grid --mode is an alias
        # of --policy, so the last spelling simply wins.)
        self._expect_usage_error(
            ["simulate", "cholesky", "--mode", "fidelity",
             "--policy", "periodic"],
            capsys, "--policy",
        )

    def test_fidelity_mode_resolves_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["compare", "swaptions", "--mode", "fidelity"])
        _resolve_sampling_args(parser, args)
        assert args.policy == "fidelity"
        assert args.error_budget == pytest.approx(0.02)
        assert args.warmup == 2

    def test_explicit_error_budget_survives_resolution(self):
        parser = build_parser()
        args = parser.parse_args(
            ["compare", "swaptions", "--mode", "fidelity",
             "--error-budget", "0.05"]
        )
        _resolve_sampling_args(parser, args)
        assert args.error_budget == pytest.approx(0.05)


class TestCommands:
    def test_list_prints_all_benchmarks(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "cholesky" in output
        assert "freqmine" in output
        assert output.count("\n") >= 20

    def test_compare_runs_small_experiment(self, capsys):
        code = main([
            "compare", "swaptions", "--scale", "0.004", "--threads", "2",
            "--policy", "lazy",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "execution-time error" in output
        assert "simulation speedup" in output

    def test_simulate_detailed_mode(self, capsys):
        code = main([
            "simulate", "vector-operation", "--scale", "0.004", "--threads", "2",
            "--mode", "detailed",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "total_cycles" in output

    def test_simulate_sampled_low_power(self, capsys):
        code = main([
            "simulate", "histogram", "--scale", "0.004", "--threads", "2",
            "--architecture", "low-power",
        ])
        assert code == 0
        assert "benchmark" in capsys.readouterr().out

    def test_simulate_fidelity_mode(self, capsys):
        code = main([
            "simulate", "histogram", "--scale", "0.004", "--threads", "2",
            "--mode", "fidelity", "--error-budget", "0.05",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "error budget" in output
        assert "committed types" in output

    def test_compare_fidelity_mode(self, capsys):
        code = main([
            "compare", "swaptions", "--scale", "0.004", "--threads", "2",
            "--mode", "fidelity", "--error-budget", "0.05",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "execution-time error" in output

    def test_variation_command(self, capsys):
        code = main(["variation", "swaptions", "--scale", "0.004", "--threads", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "within +/-5%" in output
        assert "simulate_swaption" in output

    def test_unknown_benchmark_exit_code(self, capsys):
        assert main(["compare", "not-a-benchmark", "--scale", "0.01"]) == 2
        assert "error" in capsys.readouterr().err

    def test_workers_requires_explicit_backend(self, capsys):
        # --workers under the default auto backend is rejected instead of
        # silently overriding --jobs.
        code = main([
            "compare", "swaptions", "--scale", "0.004", "--threads", "2",
            "--policy", "lazy", "--workers", "4",
        ])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_grid_profile_flag_dumps_stats(self, tmp_path, capsys):
        import pstats

        profile_path = tmp_path / "grid.prof"
        code = main([
            "grid", "--benchmarks", "swaptions", "--threads", "2",
            "--scale", "0.004", "--profile", str(profile_path),
        ])
        assert code == 0
        assert profile_path.exists()
        stats = pstats.Stats(str(profile_path))
        # The dump covers the simulation phase: engine internals must appear.
        assert any("engine" in str(func[0]) for func in stats.stats)

    def test_sweep_profile_env_dumps_stats(self, tmp_path, monkeypatch, capsys):
        profile_path = tmp_path / "sweep.prof"
        monkeypatch.setenv("REPRO_PROFILE", str(profile_path))
        code = main([
            "sweep", "W", "--benchmarks", "swaptions", "--threads", "2",
            "--scale", "0.004", "--values", "1",
        ])
        assert code == 0
        assert profile_path.exists() and profile_path.stat().st_size > 0
