"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "cholesky"])
        assert args.benchmark == "cholesky"
        assert args.threads == 8
        assert args.mode == "sampled"
        assert args.policy == "periodic"

    def test_compare_lazy_policy(self):
        args = build_parser().parse_args(
            ["compare", "dedup", "--policy", "lazy", "--threads", "4"]
        )
        assert args.policy == "lazy"
        assert args.threads == 4

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_prints_all_benchmarks(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "cholesky" in output
        assert "freqmine" in output
        assert output.count("\n") >= 20

    def test_compare_runs_small_experiment(self, capsys):
        code = main([
            "compare", "swaptions", "--scale", "0.004", "--threads", "2",
            "--policy", "lazy",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "execution-time error" in output
        assert "simulation speedup" in output

    def test_simulate_detailed_mode(self, capsys):
        code = main([
            "simulate", "vector-operation", "--scale", "0.004", "--threads", "2",
            "--mode", "detailed",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "total_cycles" in output

    def test_simulate_sampled_low_power(self, capsys):
        code = main([
            "simulate", "histogram", "--scale", "0.004", "--threads", "2",
            "--architecture", "low-power",
        ])
        assert code == 0
        assert "benchmark" in capsys.readouterr().out

    def test_variation_command(self, capsys):
        code = main(["variation", "swaptions", "--scale", "0.004", "--threads", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "within +/-5%" in output
        assert "simulate_swaption" in output

    def test_unknown_benchmark_exit_code(self, capsys):
        assert main(["compare", "not-a-benchmark", "--scale", "0.01"]) == 2
        assert "error" in capsys.readouterr().err

    def test_workers_requires_explicit_backend(self, capsys):
        # --workers under the default auto backend is rejected instead of
        # silently overriding --jobs.
        code = main([
            "compare", "swaptions", "--scale", "0.004", "--threads", "2",
            "--policy", "lazy", "--workers", "4",
        ])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_grid_profile_flag_dumps_stats(self, tmp_path, capsys):
        import pstats

        profile_path = tmp_path / "grid.prof"
        code = main([
            "grid", "--benchmarks", "swaptions", "--threads", "2",
            "--scale", "0.004", "--profile", str(profile_path),
        ])
        assert code == 0
        assert profile_path.exists()
        stats = pstats.Stats(str(profile_path))
        # The dump covers the simulation phase: engine internals must appear.
        assert any("engine" in str(func[0]) for func in stats.stats)

    def test_sweep_profile_env_dumps_stats(self, tmp_path, monkeypatch, capsys):
        profile_path = tmp_path / "sweep.prof"
        monkeypatch.setenv("REPRO_PROFILE", str(profile_path))
        code = main([
            "sweep", "W", "--benchmarks", "swaptions", "--threads", "2",
            "--scale", "0.004", "--values", "1",
        ])
        assert code == 0
        assert profile_path.exists() and profile_path.stat().st_size > 0
