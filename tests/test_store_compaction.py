"""Property-based and concurrency tests for serving-grade store compaction.

The `ResultStore` became an LRU under ``max_bytes`` for the simulation
service; these tests pin the safety properties that turn a cache eviction
policy into something a daemon can sit on top of:

* random put/get/pin/unpin/compact interleavings (hypothesis) keep the
  byte budget — after a compaction either the store fits the budget or
  everything left is pinned — and never lose a pinned entry or a failure
  marker,
* `put_if_absent` racing a concurrent compaction thread never produces a
  torn entry: every key is either a complete valid entry or absent,
* LRU recency is real — a `get` refreshes an entry so compaction evicts
  the cold one,
* the object-store layout round-trips byte-identically to the directory
  layout, without ever taking advisory locks,
* `MemoryResultStore` honours ``max_entries`` with the same pin rules.
"""

import json
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.core.config import lazy_config
from repro.exp import (
    DirectoryLayout,
    ExperimentFailure,
    ExperimentResult,
    ExperimentSpec,
    MemoryResultStore,
    ObjectStoreLayout,
    ResultStore,
    make_layout,
)
from repro.exp.store import _normalised_payload

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional test dep
    HAVE_HYPOTHESIS = False


def spec_for(seed):
    return ExperimentSpec(
        benchmark="swaptions", num_threads=2, scale=0.004,
        trace_seed=seed, config=lazy_config(),
    )


def result_for(seed):
    return ExperimentResult(
        benchmark="swaptions", architecture="default", num_threads=2,
        total_cycles=1000.0 + seed, num_instances=seed,
    )


SPECS = [spec_for(seed) for seed in range(6)]
RESULTS = [result_for(seed) for seed in range(6)]
ENTRY_SIZE = len(_normalised_payload(SPECS[0], RESULTS[0]))


def entry_paths(store):
    return sorted(store._entry_files())


def check_no_torn_entries(store):
    """Every entry file on disk parses as a complete normalised payload."""
    for path in entry_paths(store):
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert set(payload) == {"spec", "result"}


# ======================================================================
# Property: random interleavings respect the budget and lose nothing
# ======================================================================
@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestCompactionProperties:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "get", "pin", "unpin", "compact"]),
                st.integers(min_value=0, max_value=5),
            ),
            max_size=40,
        ),
        budget_entries=st.integers(min_value=1, max_value=4),
    )
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_interleavings_keep_budget_pins_and_markers(
        self, ops, budget_entries
    ):
        budget = budget_entries * (ENTRY_SIZE + 32)
        with tempfile.TemporaryDirectory() as tmp:
            store = ResultStore(tmp, max_bytes=budget)
            # A failure marker written up front must survive every op.
            failed = spec_for(999)
            store.record_failure(
                failed,
                ExperimentFailure.from_exception(
                    failed.content_key(), RuntimeError("boom")
                ),
            )
            present = set()
            for op, index in ops:
                spec, result = SPECS[index], RESULTS[index]
                key = spec.content_key()
                if op == "put":
                    store.put(spec, result)
                    present.add(key)
                elif op == "get":
                    got = store.get(spec)
                    if got is not None:
                        assert got.total_cycles == result.total_cycles
                elif op == "pin":
                    store.pin(key)
                elif op == "unpin":
                    store.unpin(key)
                elif op == "compact":
                    store.compact()
                    unpinned = [
                        path for path in entry_paths(store)
                        if path.name[: -len(".json")] not in store._pins
                    ]
                    if unpinned:
                        # Fits the budget, or only pinned entries overflow it.
                        assert (
                            store.total_bytes() <= budget
                            or not unpinned
                        )
                # Invariants that hold after *every* operation:
                check_no_torn_entries(store)
                assert store.get_failure(failed) is not None
                for pinned_key in store.pinned_keys() & present:
                    if store._key_path(pinned_key).is_file():
                        continue
                    # A pinned entry may only be missing if it was evicted
                    # while unpinned earlier; compaction itself never
                    # removes a currently-pinned file, which is what the
                    # eviction counter lets us cross-check:
                    assert store.evictions > 0
            stats = store.stats()
            assert stats["evictions"] == store.evictions
            assert stats["max_bytes"] == budget

    @given(seeds=st.lists(st.integers(0, 5), min_size=1, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_pinned_entries_survive_zero_budget(self, seeds):
        with tempfile.TemporaryDirectory() as tmp:
            store = ResultStore(tmp)
            pinned_spec = SPECS[seeds[0]]
            for seed in seeds:
                store.put(SPECS[seed], RESULTS[seed])
            store.pin(pinned_spec.content_key())
            store.compact(max_bytes=0)
            # Everything unpinned is gone, the pinned entry is untouched.
            assert store.get(pinned_spec) is not None
            remaining = {
                path.name[: -len(".json")] for path in entry_paths(store)
            }
            assert remaining == {pinned_spec.content_key()}


# ======================================================================
# put_if_absent racing a compactor
# ======================================================================
class TestCompactionRaces:
    def test_put_if_absent_survives_concurrent_compaction(self, tmp_path):
        store = ResultStore(tmp_path)
        stop = threading.Event()
        errors = []

        def compactor():
            try:
                while not stop.is_set():
                    store.compact(max_bytes=0)
            except BaseException as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        thread = threading.Thread(target=compactor)
        thread.start()
        try:
            for round_index in range(20):
                for seed in range(6):
                    spec = spec_for(1000 + seed)
                    written = store.put_if_absent(spec, result_for(seed))
                    assert isinstance(written, bool)
                    got = store.get(spec)
                    # The compactor may have already evicted it, but a
                    # served result is always complete and correct.
                    if got is not None:
                        assert got.total_cycles == result_for(seed).total_cycles
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not errors
        check_no_torn_entries(store)
        assert not list(tmp_path.rglob(".tmp-*"))

        # With the compactor gone the store serves everything again.
        for seed in range(6):
            spec = spec_for(1000 + seed)
            store.put_if_absent(spec, result_for(seed))
            assert store.get(spec) is not None


# ======================================================================
# LRU recency and auto-compaction
# ======================================================================
class TestLRUBehaviour:
    def test_get_refresh_protects_warm_entry(self, tmp_path):
        import os

        # Budget fits both entries, so the puts do not auto-compact yet.
        store = ResultStore(tmp_path, max_bytes=2 * (ENTRY_SIZE + 32))
        warm, cold = SPECS[0], SPECS[1]
        store.put(warm, RESULTS[0])
        store.put(cold, RESULTS[1])
        # Backdate both, then touch only the warm one via get().
        past = time.time() - 3600
        for spec in (warm, cold):
            os.utime(store._key_path(spec.content_key()), (past, past))
        assert store.get(warm) is not None  # refreshes mtime under budget
        store.compact(max_bytes=ENTRY_SIZE + 32)
        assert store.get(warm) is not None
        assert store.get(cold) is None
        assert store.evictions == 1

    def test_puts_trigger_auto_compaction(self, tmp_path):
        budget = 2 * (ENTRY_SIZE + 32)
        store = ResultStore(tmp_path, max_bytes=budget)
        for seed in range(6):
            store.put(SPECS[seed], RESULTS[seed])
        assert store.compactions >= 1
        assert store.evictions >= 1
        assert store.total_bytes() <= budget

    def test_failure_markers_outside_budget(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=1)
        spec = SPECS[0]
        store.record_failure(
            spec, ExperimentFailure.from_exception(spec.content_key(), RuntimeError("x"))
        )
        store.put(SPECS[1], RESULTS[1])
        store.compact()
        # Result entries fell to the budget; the diagnostic is untouchable.
        assert store.get_failure(spec) is not None
        assert store.total_bytes() == 0


# ======================================================================
# Layouts
# ======================================================================
class TestLayouts:
    def test_object_layout_round_trip_without_locks(self, tmp_path):
        store = ResultStore(tmp_path, layout="object")
        spec, result = SPECS[0], RESULTS[0]
        assert store.put_if_absent(spec, result)
        assert not store.put_if_absent(spec, result)
        got = store.get(spec)
        assert got is not None
        assert got.total_cycles == result.total_cycles
        key = spec.content_key()
        assert (
            tmp_path / "objects" / key[:2] / key[2:4] / f"{key}.json"
        ).is_file()
        assert not (tmp_path / ".locks").exists()  # lock-free layout
        assert store.stats()["layout"] == "object"
        assert len(store) == 1

    def test_layouts_write_identical_bytes(self, tmp_path):
        directory = ResultStore(tmp_path / "dir", layout="directory")
        objectstore = ResultStore(tmp_path / "obj", layout=ObjectStoreLayout())
        spec, result = SPECS[2], RESULTS[2]
        directory.put(spec, result)
        objectstore.put(spec, result)
        read = lambda store: next(iter(entry_paths(store))).read_bytes()
        assert read(directory) == read(objectstore)

    def test_object_layout_compaction_and_failures(self, tmp_path):
        store = ResultStore(tmp_path, layout="object")
        spec = SPECS[3]
        store.record_failure(
            spec, ExperimentFailure.from_exception(spec.content_key(), RuntimeError("x"))
        )
        store.put(SPECS[4], RESULTS[4])
        store.compact(max_bytes=0)
        assert len(store) == 0  # budget 0: the put was compacted away
        assert store.get_failure(spec) is not None

    def test_make_layout(self):
        assert isinstance(make_layout(None), DirectoryLayout)
        assert isinstance(make_layout("directory"), DirectoryLayout)
        assert isinstance(make_layout("object"), ObjectStoreLayout)
        custom = ObjectStoreLayout()
        assert make_layout(custom) is custom
        with pytest.raises(ValueError, match="unknown store layout"):
            make_layout("cloud")
        with pytest.raises(ValueError, match="unknown store layout"):
            ResultStore("ignored", layout="cloud")


# ======================================================================
# MemoryResultStore LRU
# ======================================================================
class TestMemoryStoreLRU:
    def test_lru_eviction_with_get_refresh(self):
        store = MemoryResultStore(max_entries=2)
        store.put(SPECS[0], RESULTS[0])
        store.put(SPECS[1], RESULTS[1])
        assert store.get(SPECS[0]) is not None  # refresh: 0 is now newest
        store.put(SPECS[2], RESULTS[2])  # evicts 1, the least recent
        assert store.get(SPECS[1]) is None
        assert store.get(SPECS[0]) is not None
        assert store.get(SPECS[2]) is not None
        assert store.evictions == 1
        assert len(store) == 2

    def test_pinned_entries_never_evicted(self):
        store = MemoryResultStore(max_entries=2)
        store.put(SPECS[0], RESULTS[0])
        store.pin(SPECS[0].content_key())
        store.put(SPECS[1], RESULTS[1])
        store.put(SPECS[2], RESULTS[2])
        # Overflow evicts the oldest *unpinned* entry: 1, never pinned 0.
        assert store.get(SPECS[0]) is not None
        assert store.get(SPECS[1]) is None
        assert store.get(SPECS[2]) is not None
        store.unpin(SPECS[0].content_key())
        store.put(SPECS[3], RESULTS[3])
        assert store.get(SPECS[0]) is None  # unpinned: evictable again

    def test_stats_counters(self):
        store = MemoryResultStore()
        store.get(SPECS[0])
        store.put(SPECS[0], RESULTS[0])
        store.get(SPECS[0])
        stats = store.stats()
        assert stats["layout"] == "memory"
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["max_entries"] is None
