"""Unit tests for the TaskPoint controller (sampling mechanism)."""

import pytest

from repro.core.config import TaskPointConfig
from repro.core.controller import ResampleReason, SamplingPhase, TaskPointController
from repro.runtime.task import TaskInstance, TaskType
from repro.sim.modes import CompletionInfo, SimulationMode
from repro.trace.records import make_record


def make_instance(instance_id, task_type="work", instructions=1000):
    record = make_record(instance_id, task_type, instructions)
    return TaskInstance(record=record, task_type=TaskType(name=task_type, type_id=0))


def complete(controller, instance, decision, ipc=2.0, worker_id=0, active=1):
    """Feed a completion notification matching a previous decision."""
    controller.notify_completion(
        CompletionInfo(
            instance=instance,
            mode=decision.mode,
            cycles=instance.instructions / ipc,
            ipc=ipc if decision.mode is SimulationMode.DETAILED else decision.ipc,
            is_warmup=decision.is_warmup,
            start_cycle=0.0,
            end_cycle=instance.instructions / ipc,
            worker_id=worker_id,
            active_workers=active,
        )
    )


def drive_single_thread(controller, count, task_type="work", ipc=2.0, start_id=0):
    """Dispatch and complete ``count`` instances on worker 0; return decisions."""
    decisions = []
    for offset in range(count):
        instance = make_instance(start_id + offset, task_type)
        decision = controller.choose_mode(instance, worker_id=0, active_workers=1,
                                          current_cycle=float(offset))
        complete(controller, instance, decision, ipc=ipc)
        decisions.append(decision)
    return decisions


class TestWarmupAndSampling:
    def test_initial_warmup_then_valid_samples(self):
        config = TaskPointConfig(warmup_instances=2, history_size=3, sampling_period=None)
        controller = TaskPointController(config)
        decisions = drive_single_thread(controller, 5)
        assert all(d.mode is SimulationMode.DETAILED for d in decisions)
        assert [d.is_warmup for d in decisions] == [True, True, False, False, False]
        assert controller.stats.warmup_instances == 2
        assert controller.stats.valid_samples == 3

    def test_transition_to_fast_forward_when_history_full(self):
        config = TaskPointConfig(warmup_instances=1, history_size=2, sampling_period=None)
        controller = TaskPointController(config)
        drive_single_thread(controller, 3)  # 1 warmup + 2 valid samples
        assert controller.phase is SamplingPhase.SAMPLING
        instance = make_instance(10)
        decision = controller.choose_mode(instance, 0, 1, 10.0)
        assert controller.phase is SamplingPhase.FAST_FORWARD
        assert decision.mode is SimulationMode.BURST
        assert decision.ipc == pytest.approx(2.0)

    def test_zero_warmup_samples_immediately(self):
        config = TaskPointConfig(warmup_instances=0, history_size=1, sampling_period=None)
        controller = TaskPointController(config)
        decisions = drive_single_thread(controller, 1)
        assert decisions[0].is_warmup is False
        assert controller.stats.valid_samples == 1

    def test_fast_forward_ipc_scales_with_instructions(self):
        config = TaskPointConfig(warmup_instances=0, history_size=1, sampling_period=None)
        controller = TaskPointController(config)
        drive_single_thread(controller, 1, ipc=4.0)
        small = make_instance(5, instructions=400)
        large = make_instance(6, instructions=4000)
        decision_small = controller.choose_mode(small, 0, 1, 0.0)
        decision_large = controller.choose_mode(large, 0, 1, 0.0)
        assert decision_small.ipc == decision_large.ipc == pytest.approx(4.0)


class TestRareTypeCutoff:
    def test_cutoff_triggers_fast_forward_despite_rare_type(self):
        # "rare" appears once; the cutoff should stop sampling after 5
        # consecutive non-rare instances even though rare's history never fills.
        config = TaskPointConfig(warmup_instances=0, history_size=2,
                                 sampling_period=None, rare_type_cutoff=5)
        controller = TaskPointController(config)
        drive_single_thread(controller, 1, task_type="rare")
        drive_single_thread(controller, 2, task_type="common", start_id=1)
        assert controller.phase is SamplingPhase.SAMPLING
        drive_single_thread(controller, 5, task_type="common", start_id=3)
        decision = controller.choose_mode(make_instance(20, "common"), 0, 1, 0.0)
        assert decision.mode is SimulationMode.BURST

    def test_rare_type_uses_all_history_fallback(self):
        config = TaskPointConfig(warmup_instances=1, history_size=2,
                                 sampling_period=None, rare_type_cutoff=3)
        controller = TaskPointController(config)
        # The single rare instance is consumed as warm-up (all-history only).
        drive_single_thread(controller, 1, task_type="rare", ipc=1.5)
        drive_single_thread(controller, 6, task_type="common", start_id=1)
        # Now in a position to fast-forward; a rare instance must use the
        # history of all samples.
        decision = controller.choose_mode(make_instance(30, "rare"), 0, 1, 0.0)
        assert decision.mode is SimulationMode.BURST
        assert decision.ipc == pytest.approx(1.5)
        assert controller.stats.fallback_estimates == 1


class TestResamplingTriggers:
    def _fast_forwarding_controller(self, **overrides):
        defaults = dict(warmup_instances=0, history_size=1, sampling_period=None)
        defaults.update(overrides)
        controller = TaskPointController(TaskPointConfig(**defaults))
        drive_single_thread(controller, 1)
        # Force the transition by asking for one more decision.
        instance = make_instance(100)
        decision = controller.choose_mode(instance, 0, 1, 0.0)
        assert decision.mode is SimulationMode.BURST
        complete(controller, instance, decision)
        return controller

    def test_new_task_type_triggers_resample(self):
        controller = self._fast_forwarding_controller()
        decision = controller.choose_mode(make_instance(200, "brand-new"), 0, 1, 0.0)
        assert decision.mode is SimulationMode.DETAILED
        assert controller.phase is SamplingPhase.SAMPLING
        assert controller.stats.resample_reasons[ResampleReason.NEW_TASK_TYPE] == 1

    def test_new_type_trigger_can_be_disabled(self):
        controller = self._fast_forwarding_controller(resample_on_new_task_type=False)
        decision = controller.choose_mode(make_instance(200, "brand-new"), 0, 1, 0.0)
        # Without the trigger, the empty history forces detailed simulation
        # through the empty-history resample instead.
        assert decision.mode is SimulationMode.DETAILED
        assert controller.stats.resample_reasons[ResampleReason.NEW_TASK_TYPE] == 0
        assert controller.stats.resample_reasons[ResampleReason.EMPTY_HISTORY] == 1

    def test_periodic_policy_triggers_resample(self):
        controller = TaskPointController(
            TaskPointConfig(warmup_instances=0, history_size=1, sampling_period=3)
        )
        drive_single_thread(controller, 1)
        burst_count = 0
        resampled = False
        for index in range(10):
            instance = make_instance(50 + index)
            decision = controller.choose_mode(instance, 0, 1, 0.0)
            if decision.mode is SimulationMode.BURST:
                burst_count += 1
            else:
                resampled = True
                break
            complete(controller, instance, decision)
        assert resampled
        assert burst_count == 3
        assert controller.stats.resample_reasons[ResampleReason.PERIOD_ELAPSED] == 1

    def test_lazy_policy_never_period_resamples(self):
        controller = self._fast_forwarding_controller()
        for index in range(50):
            instance = make_instance(300 + index)
            decision = controller.choose_mode(instance, 0, 1, 0.0)
            assert decision.mode is SimulationMode.BURST
            complete(controller, instance, decision)
        assert controller.stats.resamples == 0

    def test_thread_change_triggers_after_persistence(self):
        controller = self._fast_forwarding_controller(
            thread_change_tolerance=0.5, thread_change_persistence=3
        )
        # Sampled at 1 active worker; now pretend 4 workers are active.
        decisions = []
        for index in range(4):
            instance = make_instance(400 + index)
            decision = controller.choose_mode(instance, 0, 4, 0.0)
            decisions.append(decision)
            if decision.mode is SimulationMode.BURST:
                complete(controller, instance, decision, active=4)
        assert [d.mode for d in decisions[:2]] == [SimulationMode.BURST] * 2
        assert decisions[2].mode is SimulationMode.DETAILED
        assert controller.stats.resample_reasons[ResampleReason.THREAD_COUNT_CHANGE] == 1

    def test_transient_thread_dip_does_not_resample(self):
        controller = self._fast_forwarding_controller(
            thread_change_tolerance=0.5, thread_change_persistence=3
        )
        # Two decisions at a different count, then back to the sampled count.
        for index, active in enumerate((4, 4, 1, 1)):
            instance = make_instance(500 + index)
            decision = controller.choose_mode(instance, 0, active, 0.0)
            assert decision.mode is SimulationMode.BURST
            complete(controller, instance, decision, active=active)
        assert controller.stats.resamples == 0

    def test_thread_change_trigger_can_be_disabled(self):
        controller = self._fast_forwarding_controller(resample_on_thread_change=False)
        for index in range(10):
            instance = make_instance(600 + index)
            decision = controller.choose_mode(instance, 0, 8, 0.0)
            assert decision.mode is SimulationMode.BURST
            complete(controller, instance, decision, active=8)
        assert controller.stats.resamples == 0

    def test_resample_discards_valid_histories_and_rewarms(self):
        controller = self._fast_forwarding_controller()
        state = controller.histories.state("work")
        assert not state.valid.is_empty
        decision = controller.choose_mode(make_instance(700, "brand-new"), 0, 1, 0.0)
        assert decision.is_warmup is True  # resample warm-up of 1 instance
        assert state.valid.is_empty
        assert not state.all.is_empty


class TestStatistics:
    def test_counters_consistent(self):
        config = TaskPointConfig(warmup_instances=1, history_size=2, sampling_period=None)
        controller = TaskPointController(config)
        total = 30
        for index in range(total):
            instance = make_instance(index)
            decision = controller.choose_mode(instance, 0, 1, float(index))
            complete(controller, instance, decision)
        stats = controller.stats
        assert stats.total_instances == total
        assert stats.detailed_instances + stats.fast_forwarded == total
        assert 0.0 < stats.detailed_fraction < 1.0
        assert stats.transitions_to_fast >= 1
