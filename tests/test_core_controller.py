"""Unit tests for the TaskPoint controller (sampling mechanism)."""

import pytest

from repro.core.config import TaskPointConfig
from repro.core.controller import ResampleReason, SamplingPhase, TaskPointController
from repro.runtime.task import TaskInstance, TaskType
from repro.sim.modes import CompletionInfo, SimulationMode
from repro.trace.records import make_record


def make_instance(instance_id, task_type="work", instructions=1000):
    record = make_record(instance_id, task_type, instructions)
    return TaskInstance(record=record, task_type=TaskType(name=task_type, type_id=0))


def complete(controller, instance, decision, ipc=2.0, worker_id=0, active=1):
    """Feed a completion notification matching a previous decision."""
    controller.notify_completion(
        CompletionInfo(
            instance=instance,
            mode=decision.mode,
            cycles=instance.instructions / ipc,
            ipc=ipc if decision.mode is SimulationMode.DETAILED else decision.ipc,
            is_warmup=decision.is_warmup,
            start_cycle=0.0,
            end_cycle=instance.instructions / ipc,
            worker_id=worker_id,
            active_workers=active,
        )
    )


def drive_single_thread(controller, count, task_type="work", ipc=2.0, start_id=0):
    """Dispatch and complete ``count`` instances on worker 0; return decisions."""
    decisions = []
    for offset in range(count):
        instance = make_instance(start_id + offset, task_type)
        decision = controller.choose_mode(instance, worker_id=0, active_workers=1,
                                          current_cycle=float(offset))
        complete(controller, instance, decision, ipc=ipc)
        decisions.append(decision)
    return decisions


class TestWarmupAndSampling:
    def test_initial_warmup_then_valid_samples(self):
        config = TaskPointConfig(warmup_instances=2, history_size=3, sampling_period=None)
        controller = TaskPointController(config)
        decisions = drive_single_thread(controller, 5)
        assert all(d.mode is SimulationMode.DETAILED for d in decisions)
        assert [d.is_warmup for d in decisions] == [True, True, False, False, False]
        assert controller.stats.warmup_instances == 2
        assert controller.stats.valid_samples == 3

    def test_transition_to_fast_forward_when_history_full(self):
        config = TaskPointConfig(warmup_instances=1, history_size=2, sampling_period=None)
        controller = TaskPointController(config)
        drive_single_thread(controller, 3)  # 1 warmup + 2 valid samples
        assert controller.phase is SamplingPhase.SAMPLING
        instance = make_instance(10)
        decision = controller.choose_mode(instance, 0, 1, 10.0)
        assert controller.phase is SamplingPhase.FAST_FORWARD
        assert decision.mode is SimulationMode.BURST
        assert decision.ipc == pytest.approx(2.0)

    def test_zero_warmup_samples_immediately(self):
        config = TaskPointConfig(warmup_instances=0, history_size=1, sampling_period=None)
        controller = TaskPointController(config)
        decisions = drive_single_thread(controller, 1)
        assert decisions[0].is_warmup is False
        assert controller.stats.valid_samples == 1

    def test_fast_forward_ipc_scales_with_instructions(self):
        config = TaskPointConfig(warmup_instances=0, history_size=1, sampling_period=None)
        controller = TaskPointController(config)
        drive_single_thread(controller, 1, ipc=4.0)
        small = make_instance(5, instructions=400)
        large = make_instance(6, instructions=4000)
        decision_small = controller.choose_mode(small, 0, 1, 0.0)
        decision_large = controller.choose_mode(large, 0, 1, 0.0)
        assert decision_small.ipc == decision_large.ipc == pytest.approx(4.0)


class TestRareTypeCutoff:
    def test_cutoff_triggers_fast_forward_despite_rare_type(self):
        # "rare" appears once; the cutoff should stop sampling after 5
        # consecutive non-rare instances even though rare's history never fills.
        config = TaskPointConfig(warmup_instances=0, history_size=2,
                                 sampling_period=None, rare_type_cutoff=5)
        controller = TaskPointController(config)
        drive_single_thread(controller, 1, task_type="rare")
        drive_single_thread(controller, 2, task_type="common", start_id=1)
        assert controller.phase is SamplingPhase.SAMPLING
        drive_single_thread(controller, 5, task_type="common", start_id=3)
        decision = controller.choose_mode(make_instance(20, "common"), 0, 1, 0.0)
        assert decision.mode is SimulationMode.BURST

    def test_rare_type_uses_all_history_fallback(self):
        config = TaskPointConfig(warmup_instances=1, history_size=2,
                                 sampling_period=None, rare_type_cutoff=3)
        controller = TaskPointController(config)
        # The single rare instance is consumed as warm-up (all-history only).
        drive_single_thread(controller, 1, task_type="rare", ipc=1.5)
        drive_single_thread(controller, 6, task_type="common", start_id=1)
        # Now in a position to fast-forward; a rare instance must use the
        # history of all samples.
        decision = controller.choose_mode(make_instance(30, "rare"), 0, 1, 0.0)
        assert decision.mode is SimulationMode.BURST
        assert decision.ipc == pytest.approx(1.5)
        assert controller.stats.fallback_estimates == 1


class TestResamplingTriggers:
    def _fast_forwarding_controller(self, **overrides):
        defaults = dict(warmup_instances=0, history_size=1, sampling_period=None)
        defaults.update(overrides)
        controller = TaskPointController(TaskPointConfig(**defaults))
        drive_single_thread(controller, 1)
        # Force the transition by asking for one more decision.
        instance = make_instance(100)
        decision = controller.choose_mode(instance, 0, 1, 0.0)
        assert decision.mode is SimulationMode.BURST
        complete(controller, instance, decision)
        return controller

    def test_new_task_type_triggers_resample(self):
        controller = self._fast_forwarding_controller()
        decision = controller.choose_mode(make_instance(200, "brand-new"), 0, 1, 0.0)
        assert decision.mode is SimulationMode.DETAILED
        assert controller.phase is SamplingPhase.SAMPLING
        assert controller.stats.resample_reasons[ResampleReason.NEW_TASK_TYPE] == 1

    def test_new_type_trigger_can_be_disabled(self):
        controller = self._fast_forwarding_controller(resample_on_new_task_type=False)
        decision = controller.choose_mode(make_instance(200, "brand-new"), 0, 1, 0.0)
        # Without the trigger, the empty history forces detailed simulation
        # through the empty-history resample instead.
        assert decision.mode is SimulationMode.DETAILED
        assert controller.stats.resample_reasons[ResampleReason.NEW_TASK_TYPE] == 0
        assert controller.stats.resample_reasons[ResampleReason.EMPTY_HISTORY] == 1

    def test_periodic_policy_triggers_resample(self):
        controller = TaskPointController(
            TaskPointConfig(warmup_instances=0, history_size=1, sampling_period=3)
        )
        drive_single_thread(controller, 1)
        burst_count = 0
        resampled = False
        for index in range(10):
            instance = make_instance(50 + index)
            decision = controller.choose_mode(instance, 0, 1, 0.0)
            if decision.mode is SimulationMode.BURST:
                burst_count += 1
            else:
                resampled = True
                break
            complete(controller, instance, decision)
        assert resampled
        assert burst_count == 3
        assert controller.stats.resample_reasons[ResampleReason.PERIOD_ELAPSED] == 1

    def test_lazy_policy_never_period_resamples(self):
        controller = self._fast_forwarding_controller()
        for index in range(50):
            instance = make_instance(300 + index)
            decision = controller.choose_mode(instance, 0, 1, 0.0)
            assert decision.mode is SimulationMode.BURST
            complete(controller, instance, decision)
        assert controller.stats.resamples == 0

    def test_thread_change_triggers_after_persistence(self):
        controller = self._fast_forwarding_controller(
            thread_change_tolerance=0.5, thread_change_persistence=3
        )
        # Sampled at 1 active worker; now pretend 4 workers are active.
        decisions = []
        for index in range(4):
            instance = make_instance(400 + index)
            decision = controller.choose_mode(instance, 0, 4, 0.0)
            decisions.append(decision)
            if decision.mode is SimulationMode.BURST:
                complete(controller, instance, decision, active=4)
        assert [d.mode for d in decisions[:2]] == [SimulationMode.BURST] * 2
        assert decisions[2].mode is SimulationMode.DETAILED
        assert controller.stats.resample_reasons[ResampleReason.THREAD_COUNT_CHANGE] == 1

    def test_transient_thread_dip_does_not_resample(self):
        controller = self._fast_forwarding_controller(
            thread_change_tolerance=0.5, thread_change_persistence=3
        )
        # Two decisions at a different count, then back to the sampled count.
        for index, active in enumerate((4, 4, 1, 1)):
            instance = make_instance(500 + index)
            decision = controller.choose_mode(instance, 0, active, 0.0)
            assert decision.mode is SimulationMode.BURST
            complete(controller, instance, decision, active=active)
        assert controller.stats.resamples == 0

    def test_thread_change_trigger_can_be_disabled(self):
        controller = self._fast_forwarding_controller(resample_on_thread_change=False)
        for index in range(10):
            instance = make_instance(600 + index)
            decision = controller.choose_mode(instance, 0, 8, 0.0)
            assert decision.mode is SimulationMode.BURST
            complete(controller, instance, decision, active=8)
        assert controller.stats.resamples == 0

    def test_resample_discards_valid_histories_and_rewarms(self):
        controller = self._fast_forwarding_controller()
        state = controller.histories.state("work")
        assert not state.valid.is_empty
        decision = controller.choose_mode(make_instance(700, "brand-new"), 0, 1, 0.0)
        assert decision.is_warmup is True  # resample warm-up of 1 instance
        assert state.valid.is_empty
        assert not state.all.is_empty


class TestZeroIpcCompletions:
    """Satellite: ``ipc <= 0`` completions must not cause a resample storm."""

    def _complete_with_ipc(self, controller, instance, decision, ipc,
                           worker_id=0, active=1):
        controller.notify_completion(
            CompletionInfo(
                instance=instance,
                mode=decision.mode,
                cycles=1000.0,
                ipc=ipc,
                is_warmup=decision.is_warmup,
                start_cycle=0.0,
                end_cycle=1000.0,
                worker_id=worker_id,
                active_workers=active,
            )
        )

    def test_zero_ipc_records_floor_sample(self):
        from repro.core.controller import ZERO_IPC_FLOOR

        config = TaskPointConfig(warmup_instances=0, history_size=1,
                                 sampling_period=None)
        controller = TaskPointController(config)
        instance = make_instance(0, "zero-instr")
        decision = controller.choose_mode(instance, 0, 1, 0.0)
        assert decision.mode is SimulationMode.DETAILED
        self._complete_with_ipc(controller, instance, decision, ipc=0.0)
        # The completion lands as a valid floor sample, not a drop.
        assert controller.stats.valid_samples == 1
        state = controller.histories.state("zero-instr")
        assert not state.valid.is_empty
        assert state.valid.mean() == pytest.approx(ZERO_IPC_FLOOR)

    def test_no_resample_storm_from_zero_instruction_type(self):
        # Regression: dropping ipc<=0 completions left the type's history
        # empty, so every later fast-forward attempt fired an EMPTY_HISTORY
        # resample and the run degraded to fully detailed simulation.
        config = TaskPointConfig(warmup_instances=0, history_size=1,
                                 sampling_period=None)
        controller = TaskPointController(config)
        instance = make_instance(0, "zero-instr")
        decision = controller.choose_mode(instance, 0, 1, 0.0)
        self._complete_with_ipc(controller, instance, decision, ipc=0.0)
        for index in range(20):
            follower = make_instance(1 + index, "zero-instr")
            decision = controller.choose_mode(follower, 0, 1, float(index))
            assert decision.mode is SimulationMode.BURST
        assert controller.stats.fast_forwarded == 20
        assert controller.stats.resamples == 0
        assert controller.stats.resample_reasons[ResampleReason.EMPTY_HISTORY] == 0


class TestWarmupBudgets:
    """Satellite: initial-vs-resample warm-up budgets are per worker."""

    def _resampled_controller(self, warmup_instances=3):
        config = TaskPointConfig(warmup_instances=warmup_instances,
                                 history_size=1, sampling_period=None,
                                 resample_warmup_instances=1)
        controller = TaskPointController(config)
        drive_single_thread(controller, warmup_instances + 1)
        instance = make_instance(50)
        decision = controller.choose_mode(instance, 0, 1, 0.0)
        assert decision.mode is SimulationMode.BURST
        complete(controller, instance, decision)
        # A brand-new task type triggers the resample under test.
        decision = controller.choose_mode(make_instance(60, "brand-new"), 0, 1, 0.0)
        assert controller.stats.resamples == 1
        assert decision.is_warmup  # worker 0 re-warms with the short budget
        complete(controller, make_instance(60, "brand-new"), decision)
        return controller

    def test_late_joining_worker_gets_full_initial_warmup(self):
        # Regression: the resample used to swap the warm-up defaultdict's
        # factory, so a worker whose *first* participation came after a
        # resample warmed with the short resample budget instead of W.
        controller = self._resampled_controller(warmup_instances=3)
        warmups = []
        for index in range(5):
            instance = make_instance(70 + index)
            decision = controller.choose_mode(instance, worker_id=5,
                                              active_workers=2,
                                              current_cycle=float(index))
            warmups.append(decision.is_warmup)
            complete(controller, instance, decision, worker_id=5, active=2)
        assert warmups == [True, True, True, False, False]

    def test_warmed_worker_rewarms_with_short_budget(self):
        controller = self._resampled_controller(warmup_instances=3)
        # Worker 0 already consumed its one resample warm-up instance in the
        # fixture; its next decisions are plain detailed samples.
        instance = make_instance(90)
        decision = controller.choose_mode(instance, 0, 1, 0.0)
        assert decision.mode is SimulationMode.DETAILED
        assert not decision.is_warmup

    def test_thread_count_increase_gives_new_workers_full_warmup(self):
        config = TaskPointConfig(warmup_instances=2, history_size=1,
                                 sampling_period=None,
                                 resample_warmup_instances=1,
                                 thread_change_tolerance=0.5,
                                 thread_change_persistence=1)
        controller = TaskPointController(config)
        # Worker 0 warms and samples alone, then fast-forwards.
        drive_single_thread(controller, 3)
        instance = make_instance(10)
        decision = controller.choose_mode(instance, 0, 1, 0.0)
        assert decision.mode is SimulationMode.BURST
        complete(controller, instance, decision)
        # The thread count doubles persistently: resample.
        decision = controller.choose_mode(make_instance(11), 0, 2, 0.0)
        assert controller.stats.resample_reasons[ResampleReason.THREAD_COUNT_CHANGE] == 1
        assert decision.is_warmup  # worker 0: short re-warm-up
        complete(controller, make_instance(11), decision, active=2)
        follow_up = controller.choose_mode(make_instance(12), 0, 2, 0.0)
        assert not follow_up.is_warmup
        # The worker that joined with the increase warms with the full W.
        warmups = []
        for index in range(3):
            instance = make_instance(20 + index)
            decision = controller.choose_mode(instance, worker_id=1,
                                              active_workers=2,
                                              current_cycle=float(index))
            warmups.append(decision.is_warmup)
            complete(controller, instance, decision, worker_id=1, active=2)
        assert warmups == [True, True, False]


class TestTriggerOrdering:
    """Satellite: resample triggers fire in the paper's priority order."""

    def _fast_forwarding_controller(self, **overrides):
        defaults = dict(warmup_instances=0, history_size=1, sampling_period=None)
        defaults.update(overrides)
        controller = TaskPointController(TaskPointConfig(**defaults))
        drive_single_thread(controller, 1)
        instance = make_instance(100)
        decision = controller.choose_mode(instance, 0, 1, 0.0)
        assert decision.mode is SimulationMode.BURST
        complete(controller, instance, decision)
        return controller

    def test_new_task_type_beats_thread_count_change(self):
        controller = self._fast_forwarding_controller(
            thread_change_tolerance=0.5, thread_change_persistence=1
        )
        # Both triggers hold: unseen type AND an 8x thread-count change.
        decision = controller.choose_mode(make_instance(200, "brand-new"),
                                          worker_id=0, active_workers=8,
                                          current_cycle=0.0)
        assert decision.mode is SimulationMode.DETAILED
        reasons = controller.stats.resample_reasons
        assert reasons[ResampleReason.NEW_TASK_TYPE] == 1
        assert reasons[ResampleReason.THREAD_COUNT_CHANGE] == 0
        assert controller.stats.resamples == 1

    def test_thread_count_change_beats_period_elapsed(self):
        controller = self._fast_forwarding_controller(
            sampling_period=1, thread_change_tolerance=0.5,
            thread_change_persistence=1,
        )
        # Worker 0 already fast-forwarded one instance, so the periodic
        # policy would fire too; the thread-count trigger has priority.
        decision = controller.choose_mode(make_instance(201), worker_id=0,
                                          active_workers=8, current_cycle=0.0)
        assert decision.mode is SimulationMode.DETAILED
        reasons = controller.stats.resample_reasons
        assert reasons[ResampleReason.THREAD_COUNT_CHANGE] == 1
        assert reasons[ResampleReason.PERIOD_ELAPSED] == 0
        assert controller.stats.resamples == 1

    def test_all_three_triggers_resolve_to_new_task_type(self):
        controller = self._fast_forwarding_controller(
            sampling_period=1, thread_change_tolerance=0.5,
            thread_change_persistence=1,
        )
        decision = controller.choose_mode(make_instance(202, "brand-new"),
                                          worker_id=0, active_workers=8,
                                          current_cycle=0.0)
        assert decision.mode is SimulationMode.DETAILED
        reasons = controller.stats.resample_reasons
        assert reasons[ResampleReason.NEW_TASK_TYPE] == 1
        assert reasons[ResampleReason.THREAD_COUNT_CHANGE] == 0
        assert reasons[ResampleReason.PERIOD_ELAPSED] == 0


class RecordingPolicy:
    """Sampling policy stub that records every dispersion observation."""

    name = "recording"

    def __init__(self):
        self.observed = []

    def should_resample(self, worker_fast_forwarded):
        return False

    def observe_dispersion(self, coefficient_of_variation):
        self.observed.append(coefficient_of_variation)

    def reset(self):
        pass


class TestDispersionFeed:
    """Satellite: ``observe_dispersion`` is fed only from valid samples."""

    def test_warmup_completions_do_not_feed_policy(self):
        policy = RecordingPolicy()
        config = TaskPointConfig(warmup_instances=2, history_size=4,
                                 sampling_period=None)
        controller = TaskPointController(config, policy=policy)
        drive_single_thread(controller, 2)  # both are warm-up completions
        assert controller.stats.warmup_instances == 2
        assert policy.observed == []

    def test_valid_samples_feed_policy_once_dispersion_defined(self):
        policy = RecordingPolicy()
        config = TaskPointConfig(warmup_instances=0, history_size=4,
                                 sampling_period=None)
        controller = TaskPointController(config, policy=policy)
        for index, ipc in enumerate((2.0, 3.0, 4.0)):
            instance = make_instance(index)
            decision = controller.choose_mode(instance, 0, 1, float(index))
            complete(controller, instance, decision, ipc=ipc)
        # Dispersion is undefined for a single sample: the policy sees one
        # observation per valid sample from the second one on.
        assert len(policy.observed) == 2
        assert all(value > 0 for value in policy.observed)

    def test_invalid_samples_do_not_feed_policy(self):
        policy = RecordingPolicy()
        config = TaskPointConfig(warmup_instances=0, history_size=2,
                                 sampling_period=None)
        controller = TaskPointController(config, policy=policy)
        # Take a detailed decision but leave it in flight...
        inflight = make_instance(0)
        inflight_decision = controller.choose_mode(inflight, 1, 2, 0.0)
        assert inflight_decision.mode is SimulationMode.DETAILED
        # ...fill the history on worker 0 and transition to fast-forward...
        for index, ipc in enumerate((2.0, 3.0)):
            instance = make_instance(1 + index)
            decision = controller.choose_mode(instance, 0, 2, float(index))
            complete(controller, instance, decision, ipc=ipc, active=2)
        burst = controller.choose_mode(make_instance(10), 0, 2, 10.0)
        assert burst.mode is SimulationMode.BURST
        observed_before = len(policy.observed)
        # ...then the in-flight instance completes: invalid sample, no feed.
        complete(controller, inflight, inflight_decision, ipc=9.0,
                 worker_id=1, active=2)
        assert controller.stats.invalid_samples == 1
        assert len(policy.observed) == observed_before


class TestStatistics:
    def test_counters_consistent(self):
        config = TaskPointConfig(warmup_instances=1, history_size=2, sampling_period=None)
        controller = TaskPointController(config)
        total = 30
        for index in range(total):
            instance = make_instance(index)
            decision = controller.choose_mode(instance, 0, 1, float(index))
            complete(controller, instance, decision)
        stats = controller.stats
        assert stats.total_instances == total
        assert stats.detailed_instances + stats.fast_forwarded == total
        assert 0.0 < stats.detailed_fraction < 1.0
        assert stats.transitions_to_fast >= 1
