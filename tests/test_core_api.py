"""Tests for the high-level TaskPoint API (sampled_simulation, comparisons)."""

import pytest

from repro.core.api import compare_with_detailed, sampled_simulation
from repro.core.config import TaskPointConfig, lazy_config
from repro.core.controller import TaskPointStatistics
from repro.core.policies import AdaptiveSamplingPolicy
from repro.sim.modes import SimulationMode

from tests.conftest import build_two_type_trace, build_uniform_trace


class TestSampledSimulation:
    def test_attaches_taskpoint_statistics(self):
        trace = build_uniform_trace(num_instances=80)
        result = sampled_simulation(trace, num_threads=2, config=lazy_config())
        stats = result.metadata["taskpoint"]
        assert isinstance(stats, TaskPointStatistics)
        assert stats.total_instances == len(trace)
        assert stats.fast_forwarded > 0

    def test_mixes_detailed_and_burst_instances(self):
        trace = build_uniform_trace(num_instances=100)
        result = sampled_simulation(trace, num_threads=2, config=lazy_config())
        modes = {instance.mode for instance in result.instances}
        assert modes == {SimulationMode.DETAILED, SimulationMode.BURST}

    def test_custom_policy_accepted(self):
        trace = build_two_type_trace(num_instances=60)
        policy = AdaptiveSamplingPolicy(initial_period=20, min_period=5, max_period=100)
        result = sampled_simulation(trace, num_threads=2, policy=policy)
        assert result.num_instances == len(trace)


class TestCompareWithDetailed:
    def test_comparison_fields(self):
        trace = build_uniform_trace(num_instances=120)
        comparison = compare_with_detailed(trace, num_threads=2, config=lazy_config())
        assert comparison.benchmark == trace.name
        assert comparison.num_threads == 2
        assert comparison.detailed.cost.burst_instances == 0
        assert comparison.sampled.cost.burst_instances > 0
        assert comparison.speedup > 1.0
        assert comparison.error >= 0.0
        assert comparison.error_percent == pytest.approx(comparison.error * 100.0)

    def test_uniform_workload_low_error(self):
        trace = build_uniform_trace(num_instances=150, events_per_instance=4)
        comparison = compare_with_detailed(trace, num_threads=4, config=lazy_config())
        # Identical instances of a single type: sampling should be very accurate.
        assert comparison.error_percent < 3.0
        assert comparison.speedup > 2.0

    def test_wall_speedup_present(self):
        trace = build_uniform_trace(num_instances=60)
        comparison = compare_with_detailed(trace, num_threads=2, config=lazy_config())
        assert comparison.wall_speedup is None or comparison.wall_speedup > 0.0

    def test_periodic_not_slower_error_than_detailed_fraction(self):
        trace = build_two_type_trace(num_instances=120)
        comparison = compare_with_detailed(
            trace, num_threads=2, config=TaskPointConfig(sampling_period=20)
        )
        assert 0.0 < comparison.sampled.cost.detailed_fraction <= 1.0
        assert comparison.taskpoint_stats.resamples >= 1
