"""Unit and integration tests for the simulation engine and simulator facade."""

import pytest

from repro.sim.engine import DeadlockError, SimulationEngine
from repro.sim.modes import FixedIpcController, SimulationMode
from repro.sim.simulator import TaskSimSimulator, simulate
from repro.trace.generator import TraceBuilder
from repro.trace.records import MemoryEvent

from tests.conftest import build_chain_trace, build_two_type_trace, build_uniform_trace


class TestEngineBasics:
    def test_all_instances_complete(self, uniform_trace, high_perf):
        result = SimulationEngine(uniform_trace, high_perf, num_threads=4).run()
        assert result.num_instances == len(uniform_trace)
        assert result.total_cycles > 0
        completed_ids = sorted(i.instance_id for i in result.instances)
        assert completed_ids == list(range(len(uniform_trace)))

    def test_invalid_thread_count(self, uniform_trace, high_perf):
        with pytest.raises(ValueError):
            SimulationEngine(uniform_trace, high_perf, num_threads=0)

    def test_serial_chain_executes_in_order(self, chain_trace, high_perf):
        result = SimulationEngine(chain_trace, high_perf, num_threads=4).run()
        ordered = sorted(result.instances, key=lambda i: i.start_cycle)
        assert [i.instance_id for i in ordered] == list(range(len(chain_trace)))
        # A serial chain gains nothing from extra threads.
        for earlier, later in zip(ordered, ordered[1:]):
            assert later.start_cycle >= earlier.end_cycle

    def test_parallel_trace_scales_with_threads(self, high_perf):
        trace = build_uniform_trace(num_instances=64)
        single = SimulationEngine(trace, high_perf, num_threads=1).run()
        trace2 = build_uniform_trace(num_instances=64)
        multi = SimulationEngine(trace2, high_perf, num_threads=8).run()
        assert multi.total_cycles < single.total_cycles
        assert multi.total_cycles > single.total_cycles / 16

    def test_more_threads_than_tasks(self, high_perf):
        trace = build_uniform_trace(num_instances=3)
        result = SimulationEngine(trace, high_perf, num_threads=16).run()
        assert result.num_instances == 3
        used_workers = {i.worker_id for i in result.instances}
        assert len(used_workers) <= 3

    def test_dependencies_respected(self, high_perf):
        builder = TraceBuilder("dep-test")
        region = builder.allocator.allocate(4096)
        a = builder.add_task("a", instructions=2_000,
                             memory_events=[MemoryEvent(address=region.base)])
        b = builder.add_task("b", instructions=2_000, depends_on=[a])
        builder.add_task("c", instructions=2_000, depends_on=[a, b])
        result = SimulationEngine(builder.build(), high_perf, num_threads=4).run()
        by_id = {i.instance_id: i for i in result.instances}
        assert by_id[1].start_cycle >= by_id[0].end_cycle
        assert by_id[2].start_cycle >= by_id[1].end_cycle

    def test_cost_accumulated(self, uniform_trace, high_perf):
        result = SimulationEngine(uniform_trace, high_perf, num_threads=2).run()
        assert result.cost.detailed_instances == len(uniform_trace)
        assert result.cost.burst_instances == 0
        assert result.cost.total_units > 0


class TestModeControllerIntegration:
    def test_fixed_ipc_controller_burst_durations(self, uniform_trace, high_perf):
        controller = FixedIpcController(ipc=2.0)
        result = SimulationEngine(
            uniform_trace, high_perf, num_threads=2, controller=controller
        ).run()
        assert all(i.mode is SimulationMode.BURST for i in result.instances)
        for instance in result.instances:
            assert instance.cycles == pytest.approx(instance.instructions / 2.0)
        assert result.cost.detailed_instances == 0

    def test_burst_faster_than_detailed_in_cost(self, high_perf):
        trace_a = build_uniform_trace(num_instances=30)
        trace_b = build_uniform_trace(num_instances=30)
        detailed = SimulationEngine(trace_a, high_perf, num_threads=2).run()
        burst = SimulationEngine(
            trace_b, high_perf, num_threads=2, controller=FixedIpcController(ipc=2.0)
        ).run()
        assert burst.cost.total_units < detailed.cost.total_units

    def test_noise_model_applied(self, high_perf):
        trace_a = build_uniform_trace(num_instances=20)
        trace_b = build_uniform_trace(num_instances=20)
        base = SimulationEngine(trace_a, high_perf, num_threads=2).run()
        noisy = SimulationEngine(
            trace_b, high_perf, num_threads=2, noise_model=lambda instance: 2.0
        ).run()
        assert noisy.total_cycles == pytest.approx(base.total_cycles * 2.0, rel=0.01)


class TestSimulatorFacade:
    def test_run_records_wall_time(self, uniform_trace):
        simulator = TaskSimSimulator()
        result = simulator.run(uniform_trace, num_threads=2)
        assert result.wall_seconds is not None and result.wall_seconds > 0
        result = simulator.run(uniform_trace2(), num_threads=2, measure_wall_time=False)
        assert result.wall_seconds is None

    def test_simulate_convenience(self, two_type_trace, low_power):
        result = simulate(two_type_trace, num_threads=2, architecture=low_power)
        assert result.architecture == "low-power"
        assert result.benchmark == "two-type"
        assert result.num_threads == 2

    def test_scheduler_seed_changes_assignment(self):
        trace_a = build_two_type_trace(num_instances=40)
        trace_b = build_two_type_trace(num_instances=40)
        first = simulate(trace_a, num_threads=4, scheduler="random", scheduler_seed=1)
        second = simulate(trace_b, num_threads=4, scheduler="random", scheduler_seed=2)
        order_first = [i.instance_id for i in first.instances]
        order_second = [i.instance_id for i in second.instances]
        assert order_first != order_second

    def test_metadata_records_scheduler(self, uniform_trace):
        result = simulate(uniform_trace, num_threads=1, scheduler="locality")
        assert result.metadata["scheduler"] == "LocalityScheduler"


def uniform_trace2():
    """A fresh uniform trace (fixtures cannot be reused across runs)."""
    return build_uniform_trace(num_instances=60)


class TestPhaseProfile:
    """The $REPRO_PROFILE per-phase wall-time breakdown in vector_stats."""

    def test_phase_breakdown_recorded_when_profiling(self, monkeypatch, high_perf):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        trace = build_uniform_trace(num_instances=60)
        engine = SimulationEngine(trace, high_perf, num_threads=4)
        engine.run()
        phases = engine.vector_stats["phase_wall_s"]
        assert set(phases) == {"static", "scalar_walk", "kernel", "export"}
        assert all(value >= 0.0 for value in phases.values())
        # The grouped run executed detailed instances, so at least one of
        # the walk phases must have accumulated wall time.
        assert phases["scalar_walk"] + phases["kernel"] > 0.0

    def test_phase_breakdown_absent_by_default(self, monkeypatch, high_perf):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        trace = build_uniform_trace(num_instances=60)
        engine = SimulationEngine(trace, high_perf, num_threads=4)
        engine.run()
        assert "phase_wall_s" not in engine.vector_stats
