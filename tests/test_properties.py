"""Property-based tests (hypothesis) for core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cache import Cache
from repro.arch.config import CacheConfig, CoreConfig
from repro.arch.rob import RobModel
from repro.core.history import SampleHistory
from repro.runtime.dependencies import TaskGraphBuilder
from repro.sim.cost import SimulationCost
from repro.sim.simulator import simulate
from repro.trace.generator import TraceBuilder
from repro.trace.records import MemoryEvent
from repro.analysis.variation import BoxPlotStats


# ---------------------------------------------------------------------------
# Sample history: FIFO semantics
# ---------------------------------------------------------------------------
@given(
    capacity=st.integers(min_value=1, max_value=16),
    samples=st.lists(st.floats(min_value=0.01, max_value=100.0), max_size=60),
)
def test_sample_history_keeps_last_capacity_samples(capacity, samples):
    history = SampleHistory(capacity)
    for sample in samples:
        history.add(sample)
    assert len(history) == min(capacity, len(samples))
    assert history.samples == samples[-capacity:]
    if samples:
        expected = sum(samples[-capacity:]) / len(samples[-capacity:])
        assert abs(history.mean() - expected) < 1e-9
    else:
        assert history.mean() is None


@given(
    capacity=st.integers(min_value=1, max_value=8),
    samples=st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=40),
)
def test_sample_history_mean_within_sample_range(capacity, samples):
    history = SampleHistory(capacity)
    for sample in samples:
        history.add(sample)
    mean = history.mean()
    assert min(history.samples) - 1e-12 <= mean <= max(history.samples) + 1e-12


# ---------------------------------------------------------------------------
# Cache: occupancy and hit/miss accounting invariants
# ---------------------------------------------------------------------------
@given(
    addresses=st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300),
    ways=st.sampled_from([1, 2, 4, 8]),
)
@settings(max_examples=50, deadline=None)
def test_cache_accounting_invariants(addresses, ways):
    cache = Cache(CacheConfig(size_bytes=ways * 16 * 64, associativity=ways,
                              latency_cycles=1))
    for address in addresses:
        cache.access(address)
    stats = cache.stats
    assert stats.hits + stats.misses == len(addresses)
    assert 0.0 <= cache.occupancy() <= 1.0
    # Lines present cannot exceed misses (each resident line was missed once).
    resident = int(round(cache.occupancy() * cache.config.num_sets * ways))
    assert resident <= stats.misses
    # Re-accessing any address immediately after touching it must hit.
    cache.access(addresses[-1])
    assert cache.access(addresses[-1]) is True


@given(
    addresses=st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200)
)
@settings(max_examples=30, deadline=None)
def test_cache_single_set_never_exceeds_associativity(addresses):
    cache = Cache(CacheConfig(size_bytes=4 * 64, associativity=4, latency_cycles=1))
    for address in addresses:
        cache.access(address)
    used = sum(len(lines) for lines in cache._sets.values())
    assert used <= 4 * cache.config.num_sets


# ---------------------------------------------------------------------------
# ROB model: monotonicity properties
# ---------------------------------------------------------------------------
@given(
    instructions=st.integers(min_value=0, max_value=200_000),
    latencies=st.lists(st.floats(min_value=1.0, max_value=500.0), max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_rob_cycles_non_negative_and_monotone_in_latency(instructions, latencies):
    rob = RobModel(CoreConfig(rob_size=168, issue_width=4, commit_width=4), l1_latency=4.0)
    timing = rob.block_cycles(instructions, latencies)
    assert timing.dispatch_cycles >= 0
    assert timing.stall_cycles >= 0
    # Doubling every latency can never make the block faster.
    slower = rob.block_cycles(instructions, [latency * 2 for latency in latencies])
    assert slower.total_cycles >= timing.total_cycles - 1e-9


# ---------------------------------------------------------------------------
# Dependency derivation from data clauses is acyclic and points backwards
# ---------------------------------------------------------------------------
@given(
    clauses=st.lists(
        st.tuples(
            st.lists(st.sampled_from("abcd"), max_size=2),  # inputs
            st.lists(st.sampled_from("abcd"), max_size=2),  # outputs
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_task_graph_builder_dependencies_point_backwards(clauses):
    graph = TaskGraphBuilder()
    for task_id, (inputs, outputs) in enumerate(clauses):
        dependencies = graph.submit(task_id, inputs=inputs, outputs=outputs)
        assert all(dep < task_id for dep in dependencies)
        assert len(set(dependencies)) == len(dependencies)


# ---------------------------------------------------------------------------
# Cost model: additivity and speedup consistency
# ---------------------------------------------------------------------------
@given(
    detailed=st.lists(st.integers(min_value=1, max_value=100_000), max_size=40),
    burst=st.integers(min_value=0, max_value=1000),
)
def test_cost_total_units_additive(detailed, burst):
    cost = SimulationCost()
    for instructions in detailed:
        cost.charge_detailed(instructions, memory_events=1)
    for _ in range(burst):
        cost.charge_burst()
    assert cost.detailed_instances == len(detailed)
    assert cost.burst_instances == burst
    assert cost.total_units >= 0
    if detailed or burst:
        assert cost.total_units > 0


# ---------------------------------------------------------------------------
# Box-plot statistics: ordering invariants
# ---------------------------------------------------------------------------
@given(values=st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=200))
def test_boxplot_percentiles_ordered(values):
    stats = BoxPlotStats.from_values(values)
    assert stats.minimum <= stats.percentile_5 <= stats.quartile_1
    assert stats.quartile_1 <= stats.median <= stats.quartile_3
    assert stats.quartile_3 <= stats.percentile_95 <= stats.maximum
    assert stats.count == len(values)


# ---------------------------------------------------------------------------
# End-to-end: simulated makespan is consistent for arbitrary small task graphs
# ---------------------------------------------------------------------------
@st.composite
def small_task_graphs(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    builder = TraceBuilder("property", seed=draw(st.integers(0, 1000)))
    region = builder.allocator.allocate(1024 * 1024)
    rng = random.Random(0)
    for index in range(count):
        possible_deps = list(range(index))
        deps = draw(
            st.lists(st.sampled_from(possible_deps), unique=True, max_size=min(3, index))
        ) if possible_deps else []
        instructions = draw(st.integers(min_value=100, max_value=20_000))
        events = [MemoryEvent(address=region.offset(rng.randrange(region.size)))
                  for _ in range(draw(st.integers(0, 4)))]
        builder.add_task(
            draw(st.sampled_from(["alpha", "beta", "gamma"])),
            instructions=instructions,
            memory_events=events,
            depends_on=deps,
        )
    return builder.build()


@given(trace=small_task_graphs(), threads=st.integers(min_value=1, max_value=6))
@settings(max_examples=25, deadline=None)
def test_simulation_completes_arbitrary_task_graphs(trace, threads):
    result = simulate(trace, num_threads=threads)
    assert result.num_instances == len(trace)
    assert result.total_cycles > 0
    # Every instance respects its dependencies.
    end_by_id = {i.instance_id: i.end_cycle for i in result.instances}
    start_by_id = {i.instance_id: i.start_cycle for i in result.instances}
    for record in trace:
        for dependency in record.depends_on:
            assert start_by_id[record.instance_id] >= end_by_id[dependency] - 1e-6
    # The makespan is at least the critical path of any single instance and
    # at most the sum of all instance durations.
    durations = [i.end_cycle - i.start_cycle for i in result.instances]
    assert result.total_cycles >= max(durations) - 1e-6
    assert result.total_cycles <= sum(durations) + 1e-6
