"""Tests for the columnar trace backbone and the batched simulation path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.config import high_performance_config, low_power_config
from repro.sim.engine import SimulationEngine
from repro.sim.modes import SimulationMode
from repro.sim.results import InstanceResult, InstanceTable
from repro.trace.columns import ColumnBuilder, TaskTypeTable, TraceColumns
from repro.trace.generator import TraceBuilder
from repro.trace.io import load_trace, save_trace
from repro.trace.records import MemoryEvent, make_record
from repro.trace.trace import ApplicationTrace, TraceValidationError
from repro.workloads.registry import get_workload, list_workloads


def _sample_records():
    events = [
        MemoryEvent(address=64 * i, is_write=(i % 3 == 0), weight=1 + i % 4,
                    shared=(i % 5 == 0))
        for i in range(10)
    ]
    return [
        make_record(0, "alpha", 1000, memory_events=events[:4], blocks_hint=2),
        make_record(1, "beta", 777, memory_events=events[4:], blocks_hint=3,
                    depends_on=(0,)),
        make_record(2, "alpha", 31, memory_events=None, depends_on=(0, 1)),
        make_record(3, "gamma", 0, memory_events=events[:1], depends_on=(2,)),
    ]


class TestColumnRecordRoundTrip:
    def test_records_to_columns_and_back(self):
        records = _sample_records()
        columns = TraceColumns.from_records(records)
        assert columns.num_records == len(records)
        assert columns.to_records() == records
        for index, record in enumerate(records):
            assert columns.record(index) == record

    def test_per_record_aggregates_match_views(self):
        records = _sample_records()
        columns = TraceColumns.from_records(records)
        accesses = columns.memory_accesses_per_record()
        events = columns.detail_events_per_record()
        for index, record in enumerate(records):
            assert int(accesses[index]) == record.memory_accesses
            assert int(events[index]) == record.detail_events

    def test_type_table_interning_order(self):
        columns = TraceColumns.from_records(_sample_records())
        assert columns.types.names == ("alpha", "beta", "gamma")
        assert columns.types.intern("beta") == 1
        table = TaskTypeTable(["x", "y"])
        assert table.intern("x") == 0 and len(table) == 2

    def test_dependents_csr_matches_forward_map(self):
        trace = ApplicationTrace(name="t", records=_sample_records())
        forward = trace.dependents()
        assert forward == {0: [1, 2], 1: [2], 2: [3], 3: []}

    def test_validation_rejects_forward_dependency(self):
        builder = ColumnBuilder()
        builder.add_task("t", 10)
        builder.add_prepared("t", 10, blocks=[(10, [])], depends_on=(5,))
        with pytest.raises(TraceValidationError):
            ApplicationTrace(name="bad", columns=builder.build())

    def test_validation_rejects_block_sum_mismatch(self):
        builder = ColumnBuilder()
        builder.add_prepared("t", 10, blocks=[(4, []), (5, [])])
        with pytest.raises(TraceValidationError):
            ApplicationTrace(name="bad", columns=builder.build())

    def test_validated_flag_skips_revalidation(self):
        builder = ColumnBuilder()
        builder.add_prepared("t", 10, blocks=[(10, [])], depends_on=(3,))
        # validated=True must not raise despite the broken dependency ...
        trace = ApplicationTrace(name="trusted", columns=builder.build(), validated=True)
        # ... while an explicit validate() still detects it.
        with pytest.raises(TraceValidationError):
            trace.validate()


class TestTraceIO:
    def test_json_and_npz_round_trip(self, tmp_path):
        trace = ApplicationTrace(
            name="roundtrip", records=_sample_records(), metadata={"k": 1}
        )
        json_path = save_trace(trace, tmp_path / "t.json")
        gz_path = save_trace(trace, tmp_path / "t.json.gz")
        npz_path = save_trace(trace, tmp_path / "t.npz")
        for path in (json_path, gz_path, npz_path):
            loaded = load_trace(path)
            assert loaded.name == trace.name
            assert loaded.metadata == trace.metadata
            assert loaded.columns == trace.columns
            assert loaded.records == trace.records

    def test_npz_is_columnar_not_pickled(self, tmp_path):
        trace = get_workload("swaptions").generate(scale=0.004, seed=3)
        path = save_trace(trace, tmp_path / "t.npz")
        with np.load(path, allow_pickle=False) as archive:
            assert "event_address" in archive
        assert load_trace(path).columns == trace.columns

    def test_load_rejects_reordered_records(self, tmp_path):
        import gzip
        import json as json_module

        trace = ApplicationTrace(name="t", records=_sample_records())
        path = save_trace(trace, tmp_path / "t.json")
        payload = json_module.loads(path.read_text())
        payload["records"][0], payload["records"][1] = (
            payload["records"][1],
            payload["records"][0],
        )
        path.write_text(json_module.dumps(payload))
        with pytest.raises(TraceValidationError):
            load_trace(path)

    def test_load_rejects_corrupt_dependency(self, tmp_path):
        import json as json_module

        trace = ApplicationTrace(name="t", records=_sample_records())
        path = save_trace(trace, tmp_path / "t.json")
        payload = json_module.loads(path.read_text())
        payload["records"][0]["depends_on"] = [3]  # forward edge -> cycle risk
        path.write_text(json_module.dumps(payload))
        with pytest.raises(TraceValidationError):
            load_trace(path)

    def test_npz_rejects_corrupt_columns(self, tmp_path):
        trace = ApplicationTrace(name="t", records=_sample_records())
        path = save_trace(trace, tmp_path / "t.npz")
        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        for key, bad in (
            ("task_type_id", np.array([0, -1, 2, 99], dtype=np.int32)),
            ("event_offsets", arrays["event_offsets"][:-1]),
            ("event_weight", np.zeros_like(arrays["event_weight"])),
        ):
            corrupt = dict(arrays)
            corrupt[key] = bad
            np.savez(path, **corrupt)
            with pytest.raises(TraceValidationError):
                load_trace(path)

    def test_npz_write_leaves_no_scratch_file(self, tmp_path):
        trace = ApplicationTrace(name="t", records=_sample_records())
        save_trace(trace, tmp_path / "t.npz")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["t.npz"]

    def test_npz_rejects_unknown_version(self, tmp_path):
        trace = ApplicationTrace(name="v", records=_sample_records())
        path = save_trace(trace, tmp_path / "t.npz")
        import json as json_module

        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        header = json_module.loads(bytes(arrays["header"]).decode())
        header["format_version"] = 99
        arrays["header"] = np.frombuffer(
            json_module.dumps(header).encode(), dtype=np.uint8
        )
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="format version"):
            load_trace(path)


class TestBuilderEquivalence:
    @pytest.mark.parametrize("name", list_workloads())
    def test_column_builder_matches_record_append(self, name):
        """Column-built traces are indistinguishable from record-built ones."""
        trace = get_workload(name).generate(scale=0.004, seed=7)
        records = trace.records
        rebuilt = ApplicationTrace(
            name=trace.name, records=records, metadata=dict(trace.metadata)
        )
        assert rebuilt.columns == trace.columns
        assert rebuilt.statistics() == trace.statistics()

    def test_add_task_matches_make_record_splitting(self):
        events = [MemoryEvent(address=64 * i, weight=1 + i % 3) for i in range(7)]
        builder = TraceBuilder(name="split", seed=0)
        builder.add_task("t", 1001, memory_events=events, blocks=3)
        built = builder.build()[0]
        reference = make_record(
            0, "t", 1001, memory_events=events, blocks_hint=3
        )
        assert built == reference

    def test_trace_statistics_cached_object(self):
        trace = get_workload("swaptions").generate(scale=0.004, seed=1)
        assert trace.statistics() is trace.statistics()
        trace.invalidate_caches()
        assert trace.statistics() == trace.statistics()


class TestBatchedEngineEquivalence:
    @pytest.mark.parametrize("arch_factory", [high_performance_config, low_power_config])
    @pytest.mark.parametrize("scheduler", ["fifo", "locality"])
    def test_batched_matches_per_record_path(self, arch_factory, scheduler):
        from repro.runtime.scheduler import make_scheduler

        trace = get_workload("cholesky").generate(scale=0.008, seed=2)
        outcomes = []
        for use_batched in (False, True):
            engine = SimulationEngine(
                trace,
                arch_factory(),
                num_threads=4,
                scheduler=make_scheduler(scheduler),
                use_batched=use_batched,
            )
            result = engine.run()
            snapshot = engine.memory_system.cache_snapshot()
            rows = [
                (i.instance_id, i.worker_id, i.mode, i.start_cycle, i.end_cycle, i.ipc)
                for i in result.instances
            ]
            outcomes.append((result.total_cycles, rows, snapshot))
        assert outcomes[0][0] == outcomes[1][0]
        assert outcomes[0][1] == outcomes[1][1]
        assert outcomes[0][2] == outcomes[1][2]

    def test_batched_matches_per_record_with_noise(self):
        from repro.analysis.native import NativeExecutionModel

        trace = get_workload("swaptions").generate(scale=0.004, seed=5)
        totals = []
        for use_batched in (False, True):
            engine = SimulationEngine(
                trace,
                high_performance_config(),
                num_threads=2,
                noise_model=NativeExecutionModel(seed=11),
                use_batched=use_batched,
            )
            totals.append(engine.run().total_cycles)
        assert totals[0] == totals[1]


class TestInstanceTable:
    def _table(self):
        table = InstanceTable()
        table.append(0, "a", 1, True, 100, 0.0, 50.0, 2.0, True)
        table.append(1, "b", 0, False, 60, 10.0, 40.0, 2.0, False)
        table.append(2, "a", 1, True, 80, 50.0, 90.0, 2.0, False)
        return table

    def test_sequence_protocol_and_views(self):
        table = self._table()
        assert len(table) == 3
        assert isinstance(table[0], InstanceResult)
        assert table[0] is table[0]  # views are cached
        assert table[-1].instance_id == 2
        assert [i.instance_id for i in table] == [0, 1, 2]
        assert [i.instance_id for i in table[1:]] == [1, 2]
        assert table[1].mode is SimulationMode.BURST
        assert table[0].cycles == 50.0
        with pytest.raises(IndexError):
            table[3]

    def test_engine_returns_instance_table(self):
        trace = get_workload("swaptions").generate(scale=0.004, seed=1)
        result = SimulationEngine(
            trace, high_performance_config(), num_threads=2
        ).run()
        assert isinstance(result.instances, InstanceTable)
        assert result.num_instances == len(trace)
        assert result.total_instructions == sum(
            record.instructions for record in trace.records
        )
        grouped = result.ipc_by_type(detailed_only=True)
        for task_type, values in grouped.items():
            assert all(v > 0 for v in values)
            assert len(values) <= len(result.instances_of(task_type))


class TestLazyTaskInstance:
    def test_record_materialised_on_demand(self):
        from repro.runtime.dependencies import DependencyTracker

        trace = get_workload("swaptions").generate(scale=0.004, seed=1)
        tracker = DependencyTracker(trace)
        instance = tracker.instance(0)
        assert instance._record is None
        assert instance.instructions == trace.columns.instructions[0]
        record = instance.record
        assert record == trace[0]
        assert instance._record is record  # cached

    def test_record_constructor_still_works(self):
        from repro.runtime.task import TaskInstance, TaskType

        record = make_record(0, "t", 10)
        instance = TaskInstance(record=record, task_type=TaskType("t", 0))
        assert instance.record is record
        assert instance.instance_id == 0
        with pytest.raises(ValueError):
            TaskInstance()
