"""Unit tests for task instances, dependency tracking and data-clause graphs."""

import pytest

from repro.runtime.dependencies import DependencyTracker, TaskGraphBuilder
from repro.runtime.task import TaskInstance, TaskState, TaskType
from repro.trace.records import make_record

from tests.conftest import build_chain_trace, build_uniform_trace


def make_instance(instance_id=0, deps=0):
    record = make_record(instance_id, "t", 100)
    return TaskInstance(
        record=record,
        task_type=TaskType(name="t", type_id=0),
        remaining_dependencies=deps,
    )


class TestTaskInstanceLifecycle:
    def test_normal_lifecycle(self):
        instance = make_instance()
        assert instance.state is TaskState.CREATED
        instance.mark_ready()
        instance.mark_running(worker_id=2, start_cycle=10.0)
        instance.mark_completed(end_cycle=110.0)
        assert instance.state is TaskState.COMPLETED
        assert instance.worker_id == 2
        assert instance.cycles == 100.0
        assert instance.ipc == pytest.approx(1.0)

    def test_cannot_mark_ready_with_pending_dependencies(self):
        instance = make_instance(deps=1)
        with pytest.raises(ValueError):
            instance.mark_ready()

    def test_cannot_run_before_ready(self):
        instance = make_instance()
        with pytest.raises(ValueError):
            instance.mark_running(0, 0.0)

    def test_cannot_complete_before_running(self):
        instance = make_instance()
        instance.mark_ready()
        with pytest.raises(ValueError):
            instance.mark_completed(5.0)

    def test_end_before_start_rejected(self):
        instance = make_instance()
        instance.mark_ready()
        instance.mark_running(0, 100.0)
        with pytest.raises(ValueError):
            instance.mark_completed(50.0)

    def test_ipc_none_before_completion(self):
        instance = make_instance()
        assert instance.cycles is None
        assert instance.ipc is None


class TestDependencyTracker:
    def test_initially_ready_instances(self):
        tracker = DependencyTracker(build_uniform_trace(num_instances=5))
        ready = tracker.initially_ready()
        assert len(ready) == 5
        assert all(instance.state is TaskState.READY for instance in ready)

    def test_chain_releases_one_at_a_time(self):
        tracker = DependencyTracker(build_chain_trace(length=3))
        ready = tracker.initially_ready()
        assert [i.instance_id for i in ready] == [0]
        first = tracker.instance(0)
        first.mark_running(0, 0.0)
        first.mark_completed(1.0)
        released = tracker.complete(0)
        assert [i.instance_id for i in released] == [1]
        assert tracker.instance(2).state is TaskState.CREATED

    def test_complete_requires_completed_state(self):
        tracker = DependencyTracker(build_uniform_trace(num_instances=2))
        tracker.initially_ready()
        with pytest.raises(ValueError):
            tracker.complete(0)

    def test_all_completed(self):
        tracker = DependencyTracker(build_uniform_trace(num_instances=2))
        tracker.initially_ready()
        for instance_id in range(2):
            instance = tracker.instance(instance_id)
            instance.mark_running(0, 0.0)
            instance.mark_completed(1.0)
            tracker.complete(instance_id)
        assert tracker.all_completed()
        assert tracker.num_completed == 2

    def test_task_types_deduplicated(self):
        tracker = DependencyTracker(build_uniform_trace(num_instances=4))
        assert [t.name for t in tracker.task_types] == ["work"]


class TestTaskGraphBuilder:
    def test_read_after_write(self):
        graph = TaskGraphBuilder()
        graph.submit(0, outputs=["x"])
        assert graph.submit(1, inputs=["x"]) == [0]

    def test_write_after_read_and_write(self):
        graph = TaskGraphBuilder()
        graph.submit(0, outputs=["x"])
        graph.submit(1, inputs=["x"])
        graph.submit(2, inputs=["x"])
        deps = graph.submit(3, outputs=["x"])
        assert set(deps) == {0, 1, 2}

    def test_independent_data_no_dependency(self):
        graph = TaskGraphBuilder()
        graph.submit(0, outputs=["x"])
        assert graph.submit(1, outputs=["y"]) == []

    def test_inout_serialises(self):
        graph = TaskGraphBuilder()
        graph.submit(0, inouts=["acc"])
        assert graph.submit(1, inouts=["acc"]) == [0]
        assert graph.submit(2, inouts=["acc"]) == [1]

    def test_parallel_readers_then_writer(self):
        graph = TaskGraphBuilder()
        graph.submit(0, outputs=["m"])
        first_reader = graph.submit(1, inputs=["m"])
        second_reader = graph.submit(2, inputs=["m"])
        assert first_reader == [0] and second_reader == [0]
        assert set(graph.submit(3, outputs=["m"])) == {0, 1, 2}

    def test_dependencies_of(self):
        graph = TaskGraphBuilder()
        graph.submit(0, outputs=["x"])
        graph.submit(1, inputs=["x"])
        assert graph.dependencies_of(1) == [0]
        assert graph.dependencies_of(42) == []
