"""Unit tests for architecture configurations (Table II presets)."""

import pytest

from repro.arch.config import (
    ArchitectureConfig,
    CacheConfig,
    CoreConfig,
    MemoryConfig,
    high_performance_config,
    low_power_config,
)


class TestCacheConfig:
    def test_num_sets(self):
        config = CacheConfig(size_bytes=32 * 1024, associativity=8, latency_cycles=4)
        assert config.num_sets == 64

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0, associativity=1, latency_cycles=1)

    def test_invalid_line_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, associativity=1, latency_cycles=1, line_bytes=48)

    def test_size_must_be_multiple_of_way_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, associativity=4, latency_cycles=1)


class TestCoreConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CoreConfig(rob_size=0, issue_width=4, commit_width=4)
        with pytest.raises(ValueError):
            CoreConfig(rob_size=64, issue_width=0, commit_width=4)
        with pytest.raises(ValueError):
            CoreConfig(rob_size=64, issue_width=4, commit_width=4, frequency_ghz=0)


class TestMemoryConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryConfig(dram_bandwidth_lines_per_cycle=0)
        with pytest.raises(ValueError):
            MemoryConfig(dram_latency_cycles=-1)


class TestTable2Presets:
    def test_high_performance_matches_table2(self):
        config = high_performance_config()
        assert config.core.rob_size == 168
        assert config.core.issue_width == 4
        assert config.core.commit_width == 4
        assert config.l1.size_bytes == 32 * 1024
        assert config.l1.associativity == 8
        assert config.l1.latency_cycles == 4
        assert config.l2.size_bytes == 2 * 1024 * 1024
        assert config.l2.associativity == 8
        assert config.l2.latency_cycles == 11
        assert config.l2.shared is False
        assert config.l3 is not None
        assert config.l3.size_bytes == 20 * 1024 * 1024
        assert config.l3.associativity == 20
        assert config.l3.latency_cycles == 28
        assert config.l3.shared is True
        assert config.cache_levels == 3

    def test_low_power_matches_table2(self):
        config = low_power_config()
        assert config.core.rob_size == 40
        assert config.core.issue_width == 3
        assert config.core.commit_width == 3
        assert config.l1.associativity == 2
        assert config.l2.size_bytes == 1024 * 1024
        assert config.l2.associativity == 16
        assert config.l2.latency_cycles == 21
        assert config.l2.shared is True
        assert config.l3 is None
        assert config.cache_levels == 2
        assert config.last_level is config.l2

    def test_with_core_returns_modified_copy(self):
        base = high_performance_config()
        modified = base.with_core(rob_size=256)
        assert modified.core.rob_size == 256
        assert base.core.rob_size == 168
        assert modified.l1 == base.l1

    def test_line_size_consistency_enforced(self):
        good = high_performance_config()
        with pytest.raises(ValueError):
            ArchitectureConfig(
                name="bad",
                core=good.core,
                l1=CacheConfig(size_bytes=32 * 1024, associativity=8, latency_cycles=4,
                               line_bytes=64),
                l2=CacheConfig(size_bytes=1024 * 1024, associativity=8, latency_cycles=10,
                               line_bytes=128),
            )
