"""Lifecycle, fairness and dedup tests for the simulation service.

Covers the `repro.serve` daemon end to end over real sockets — submit /
status / watch / cancel / stats against an in-process `SimulationService`
owning a live `AsyncWorkerBackend` pool — plus the `FairShareQueue`
scheduling discipline in isolation:

* weighted fair sharing, per-tenant in-flight caps and starvation-free
  priority aging (deterministic pop orders, no daemon involved),
* requeue safety: death-requeued units keep their place, cancelled
  in-flight units are dropped and never re-run,
* submit -> poll -> watch job lifecycle, re-attach to identical
  submissions, cross-job spec dedup (one execution, both jobs served),
* two tenants submitting concurrently produce a store byte-identical to
  the same grid run serially,
* a flooding tenant cannot starve a light tenant (acceptance criterion),
* warm-cache resubmission reports all-cached with zero executions and the
  hit counters to prove it (the stats-frame regression test).
"""

import asyncio
import contextlib
import threading
import time

import pytest

from repro.core.config import lazy_config
from repro.exp import (
    AsyncWorkerBackend,
    ExperimentSpec,
    ResultStore,
    SerialBackend,
    run_experiments,
)
from repro.serve import (
    FairShareQueue,
    ServiceClient,
    ServiceError,
    ServiceJob,
    SimulationService,
    job_id_for,
    store_digest,
)

from exp_helpers import store_result_bytes

SCALE = 0.004


def small_spec(benchmark="swaptions", threads=2, seed=1, **kwargs):
    return ExperimentSpec(
        benchmark=benchmark, num_threads=threads, scale=SCALE,
        trace_seed=seed, config=lazy_config(), **kwargs,
    )


def small_grid(seed=1):
    specs = []
    for benchmark in ("swaptions", "vector-operation"):
        for threads in (1, 2):
            spec = small_spec(benchmark=benchmark, threads=threads, seed=seed)
            specs.extend([spec, spec.baseline()])
    return specs


# ======================================================================
# FairShareQueue in isolation
# ======================================================================
def unit(index, tenant, priority=0, seed=None):
    spec = small_spec(seed=seed if seed is not None else index)
    return ServiceJob(index, spec, spec.content_key(), tenant, priority)


class TestFairShareQueue:
    def drain_order(self, queue, count):
        """Pop ``count`` units, completing each immediately; tenant names."""
        order = []
        for _ in range(count):
            job = queue.get_nowait()
            order.append(job.tenant)
            queue.task_done(job)
        return order

    def test_weighted_interleave(self):
        queue = FairShareQueue()
        queue.configure_tenant("heavy", weight=2.0)
        for index in range(12):
            queue.submit(unit(index, "heavy" if index % 2 else "light"))
        order = self.drain_order(queue, 9)
        # Under backlog a weight-2 tenant receives twice the pops.
        assert order.count("heavy") == 6
        assert order.count("light") == 3

    def test_single_tenant_fifo_and_priority(self):
        queue = FairShareQueue()
        queue.submit(unit(0, "t", priority=0))
        queue.submit(unit(1, "t", priority=0))
        queue.submit(unit(2, "t", priority=5))
        popped = [queue.get_nowait().index for _ in range(3)]
        # Priority wins now; equal priorities keep submission order.
        assert popped == [2, 0, 1]

    def test_priority_aging_prevents_starvation(self):
        queue = FairShareQueue(aging_ticks=2)
        queue.submit(unit(0, "t", priority=0))  # age_key 0 at pops=0
        popped = []
        for index in range(1, 6):
            queue.submit(unit(index, "t", priority=1))
            job = queue.get_nowait()
            popped.append(job.index)
            queue.task_done(job)
            if job.index == 0:
                break
        # The low-priority unit ages to the front within aging_ticks pops of
        # higher-priority arrivals; it is never starved.
        assert 0 in popped
        assert len(popped) <= 3

    def test_in_flight_cap_gates_pops(self):
        queue = FairShareQueue()
        queue.configure_tenant("capped", cap=1)
        for index in range(3):
            queue.submit(unit(index, "capped"))
        first = queue.get_nowait()
        with pytest.raises(asyncio.QueueEmpty):
            queue.get_nowait()  # at cap: queued units are ineligible
        queue.task_done(first)
        second = queue.get_nowait()
        assert second.index != first.index

    def test_requeue_keeps_age_key(self):
        queue = FairShareQueue()
        queue.submit(unit(0, "t"))
        job = queue.get_nowait()
        original_age = job.age_key
        queue.put_nowait(job)  # death requeue
        again = queue.get_nowait()
        assert again is job
        assert again.age_key == original_age
        assert queue.stats()["tenants"]["t"]["in_flight"] == 1

    def test_cancelled_in_flight_dropped_on_requeue(self):
        dropped = []
        queue = FairShareQueue(on_drop=dropped.append)
        queue.submit(unit(0, "t"))
        job = queue.get_nowait()
        assert queue.cancel({job.index}) == []  # in flight, not queued
        queue.put_nowait(job)  # the worker died unacknowledged
        assert dropped == [job]
        assert queue.dropped == 1
        assert queue.empty()  # the cancelled unit never re-entered

    def test_cancel_removes_queued_units(self):
        queue = FairShareQueue()
        for index in range(3):
            queue.submit(unit(index, "t"))
        removed = queue.cancel({1})
        assert [job.index for job in removed] == [1]
        remaining = [queue.get_nowait().index for _ in range(2)]
        assert remaining == [0, 2]

    def test_idle_tenant_gets_no_catchup_burst(self):
        queue = FairShareQueue()
        for index in range(8):
            queue.submit(unit(index, "busy"))
        self.drain_order(queue, 6)
        # "late" was idle the whole time; it re-enters at the current
        # virtual time, so service alternates instead of bursting late.
        queue.submit(unit(100, "late"))
        queue.submit(unit(101, "late"))
        order = self.drain_order(queue, 4)
        assert order.count("late") == 2
        assert order.count("busy") == 2
        assert order != ["late", "late", "busy", "busy"]

    def test_stats_snapshot(self):
        queue = FairShareQueue(default_cap=4)
        queue.submit(unit(0, "t"))
        job = queue.get_nowait()
        stats = queue.stats()
        assert stats["in_flight"] == 1
        assert stats["pops"] == 1
        assert stats["tenants"]["t"]["cap"] == 4
        queue.task_done(job)
        assert queue.stats()["tenants"]["t"]["completed"] == 1


# ======================================================================
# In-process daemon harness (real sockets, live worker pool)
# ======================================================================
class Harness:
    """Run a `SimulationService` on a background event-loop thread."""

    def __init__(self, cache_dir, *, workers=2, tenants=None, **service_kwargs):
        self.cache_dir = cache_dir
        self.workers = workers
        self.tenants = tenants or {}
        self.service_kwargs = service_kwargs
        self.service = None
        self.error = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced by __exit__ / client calls
            self.error = exc
            self._ready.set()

    async def _main(self):
        backend = AsyncWorkerBackend(
            num_workers=self.workers, heartbeat_interval=0.5
        )
        store = None
        if self.cache_dir is not None:
            store = ResultStore(self.cache_dir)
        service = SimulationService(backend, store=store, **self.service_kwargs)
        for name, settings in self.tenants.items():
            service.configure_tenant(name, **settings)
        await service.start("127.0.0.1", 0)
        self.service = service
        self._ready.set()
        await service.serve_until_stopped()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=60), "daemon failed to start"
        if self.error is not None:
            raise self.error
        return self

    def __exit__(self, *exc_info):
        if self.service is not None:
            with contextlib.suppress(Exception):
                self.client().stop()
        self._thread.join(timeout=60)
        assert not self._thread.is_alive(), "daemon failed to stop"

    def client(self, timeout=120.0):
        return ServiceClient(
            self.service.host, self.service.port, timeout=timeout
        )


def wait_status(client, job_id, wanted, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        snapshot = client.status(job_id)
        if snapshot["status"] in wanted:
            return snapshot
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never reached {wanted}")


class TestServiceLifecycle:
    def test_submit_poll_watch(self, tmp_path):
        specs = [small_spec(threads=1), small_spec(threads=2)]
        with Harness(tmp_path / "cache") as harness:
            client = harness.client()
            submitted = client.submit(specs, tenant="alice")
            assert submitted["type"] == "submitted"
            assert submitted["total"] == 2
            assert submitted["cached"] == 0
            assert not submitted["attached"]
            job_id = submitted["job"]
            assert job_id == job_id_for(
                "alice", [spec.content_key() for spec in specs]
            )

            updates = []
            done = client.watch(job_id, on_update=updates.append)
            assert done["type"] == "job_done"
            assert done["status"] == "done"
            assert len(done["results"]) == 2
            assert done["failures"] == []
            assert updates[0]["type"] == "job_status"  # initial snapshot

            # Polling a finished job and the service-wide listing agree.
            snapshot = wait_status(client, job_id, {"done"})
            assert snapshot["counts"]["done"] == 2
            listing = client.status()
            assert [job["job"] for job in listing["jobs"]] == [job_id]

            # The reported digest is exactly the store's bytes.
            assert done["digest"] == store_digest(
                tmp_path / "cache",
                keys=[spec.content_key() for spec in specs],
            )

    def test_error_frames(self, tmp_path):
        with Harness(tmp_path / "cache") as harness:
            client = harness.client()
            with pytest.raises(ServiceError, match="unknown job"):
                client.status("no-such-job")
            with pytest.raises(ServiceError, match="unknown job"):
                client.cancel("no-such-job")
            with pytest.raises(ServiceError, match="unknown frame type"):
                client._roundtrip({"type": "frobnicate"})
            with pytest.raises(ServiceError, match="bad submit frame"):
                client._roundtrip({"type": "submit", "tenant": "t", "specs": []})

    def test_identical_submission_attaches(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EXP_WORKER_DELAY", "0.2")
        specs = [small_spec(seed=7), small_spec(seed=8)]
        with Harness(tmp_path / "cache") as harness:
            client = harness.client()
            first = client.submit(specs, tenant="alice")
            second = client.submit(list(reversed(specs)), tenant="alice")
            assert second["job"] == first["job"]  # same (tenant, spec-set)
            assert second["attached"]
            other_tenant = client.submit(specs, tenant="bob")
            assert other_tenant["job"] != first["job"]
            client.wait(first["job"])
            client.wait(other_tenant["job"])

    def test_cross_job_dedup_single_execution(self, tmp_path, monkeypatch):
        exec_log = tmp_path / "exec.log"
        monkeypatch.setenv("REPRO_EXP_WORKER_EXECLOG", str(exec_log))
        monkeypatch.setenv("REPRO_EXP_WORKER_DELAY", "0.2")
        spec = small_spec(seed=11)
        with Harness(tmp_path / "cache", workers=2) as harness:
            client = harness.client()
            job_a = client.submit([spec], tenant="alice")["job"]
            job_b = client.submit([spec], tenant="bob")["job"]
            assert job_a != job_b
            done_a = client.wait(job_a)
            done_b = client.wait(job_b)
            assert done_a["status"] == done_b["status"] == "done"
            assert done_a["digest"] == done_b["digest"]
        # The shared spec ran exactly once; the second job subscribed to the
        # in-flight key instead of enqueueing a duplicate unit.
        executed = exec_log.read_text().split()
        assert executed.count(spec.content_key()) == 1


class TestServiceEquivalence:
    def test_concurrent_tenants_match_serial_store(self, tmp_path):
        grid = small_grid()
        half = len(grid) // 2
        batches = {"alice": grid[:half], "bob": grid[half:]}

        serial_dir = tmp_path / "serial"
        run_experiments(
            grid, backend=SerialBackend(), store=ResultStore(serial_dir)
        )

        served_dir = tmp_path / "served"
        with Harness(served_dir, workers=2) as harness:
            errors = []

            def run_tenant(tenant, specs):
                try:
                    client = harness.client()
                    job = client.submit(specs, tenant=tenant)["job"]
                    done = client.wait(job)
                    assert done["status"] == "done", done
                except BaseException as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=run_tenant, args=(tenant, specs))
                for tenant, specs in batches.items()
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors, errors

            stats = harness.client().stats()
            tenants = stats["queue"]["tenants"]
            assert set(tenants) >= {"alice", "bob"}
            assert stats["jobs"]["done"] == 2

        # Byte-for-byte: the served store equals the serial store.
        assert store_result_bytes(served_dir) == store_result_bytes(serial_dir)
        assert store_digest(served_dir) == store_digest(serial_dir)

    def test_warm_resubmit_reports_hits_not_executions(
        self, tmp_path, monkeypatch
    ):
        """Satellite: warm-cache reruns are 0 executions and N store hits."""
        exec_log = tmp_path / "exec.log"
        monkeypatch.setenv("REPRO_EXP_WORKER_EXECLOG", str(exec_log))
        specs = [small_spec(threads=1, seed=21), small_spec(threads=2, seed=21)]
        with Harness(tmp_path / "cache") as harness:
            client = harness.client()
            cold = client.submit(specs, tenant="alice")
            client.wait(cold["job"])
            executed_cold = exec_log.read_text().split()
            assert sorted(executed_cold) == sorted(
                spec.content_key() for spec in specs
            )
            before = client.stats()["store"]

            # Different tenant => different job id => genuinely resubmitted.
            warm = client.submit(specs, tenant="bob")
            assert warm["cached"] == len(specs)
            done = client.wait(warm["job"])
            assert done["status"] == "done"
            assert all(entry["cached"] for entry in done["results"])
            assert done["digest"] == store_digest(
                tmp_path / "cache",
                keys=[spec.content_key() for spec in specs],
            )

            after = client.stats()["store"]
            assert after["hits"] == before["hits"] + len(specs)
            assert after["misses"] == before["misses"]
        # No further executions happened for the warm job.
        assert exec_log.read_text().split() == executed_cold


class TestFairnessAndCancel:
    def test_flooder_cannot_starve_light_tenant(self, tmp_path, monkeypatch):
        """Acceptance criterion: fair share under a flooding tenant."""
        monkeypatch.setenv("REPRO_EXP_WORKER_DELAY", "0.15")
        flood = [small_spec(seed=100 + index) for index in range(10)]
        light = [small_spec(seed=500)]
        tenants = {"flooder": {"cap": 1}}
        with Harness(tmp_path / "cache", workers=2, tenants=tenants) as harness:
            client = harness.client()
            flood_job = client.submit(flood, tenant="flooder")["job"]
            light_job = client.submit(light, tenant="light")["job"]
            done = client.wait(light_job)
            assert done["status"] == "done"
            # The light tenant finished while the flooder still has backlog:
            # its cap kept it from occupying the whole pool.
            flood_snapshot = client.status(flood_job)
            assert flood_snapshot["counts"]["pending"] > 0
            client.wait(flood_job)  # drain before teardown

    def test_cancel_mid_batch(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EXP_WORKER_DELAY", "0.2")
        specs = [small_spec(seed=300 + index) for index in range(8)]
        with Harness(tmp_path / "cache", workers=2) as harness:
            client = harness.client()
            job_id = client.submit(specs, tenant="alice")["job"]
            # Let some units finish so the cancel is genuinely mid-batch.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                snapshot = client.status(job_id)
                if snapshot["counts"]["done"] >= 1:
                    break
                time.sleep(0.05)
            ack = client.cancel(job_id)
            assert ack["type"] == "cancel_ack"
            assert ack["cancelled"] > 0

            done = client.wait(job_id)
            assert done["status"] == "cancelled"
            counts = client.status(job_id)["counts"]
            assert counts["pending"] == 0
            assert counts["cancelled"] == ack["cancelled"]
            assert counts["done"] + counts["cancelled"] == len(specs)

            # Identical resubmission re-attaches to the cancelled record
            # (deterministic job ids) rather than forking a duplicate.
            again = client.submit(specs, tenant="alice")
            assert again["job"] == job_id
            assert again["attached"]

            # The queue dropped or completed everything it popped; nothing
            # cancelled is left in flight.
            queue_stats = client.stats()["queue"]
            assert queue_stats["queued"] == 0
            # Cancelled-but-done store entries are warm for future jobs.
            done_keys = [
                entry["key"]
                for entry in done["results"]
                if entry["state"] == "done"
            ]
            if done_keys:
                rerun = client.submit(
                    [s for s in specs if s.content_key() in done_keys[:1]],
                    tenant="bob",
                )
                assert rerun["cached"] == 1
                client.wait(rerun["job"])


class TestServiceStats:
    def test_stats_frame_shape(self, tmp_path):
        with Harness(tmp_path / "cache") as harness:
            client = harness.client()
            client.wait(client.submit([small_spec(seed=42)], tenant="t")["job"])
            stats = client.stats()
            assert stats["type"] == "stats_report"
            assert stats["protocol"] >= 4
            assert stats["uptime_seconds"] > 0
            assert stats["jobs"] == {"total": 1, "done": 1}
            assert stats["completions"] == 1
            assert stats["recovered_jobs"] == 0
            assert stats["store"]["layout"] == "directory"
            assert stats["store"]["entries"] == 1
            assert stats["store"]["pinned"] == 0  # all pins released
            assert stats["dispatch"]["live_workers"] >= 1
            assert stats["queue"]["in_flight"] == 0
