"""Equivalence and plan-cache tests for the grouped/vectorised detailed path.

The grouped-dispatch engine (``use_vector=True``, the default) defers
commuting detailed instances and executes them through the scalar grouped
executor or the vectorised walk kernel, chosen adaptively at run time.  All
of it is an implementation detail: results, cache/interconnect/DRAM
statistics and the final tag-store contents must be bit-identical to the
per-record ``DetailedCoreModel`` oracle.  These tests pin that equivalence
across every registered workload, both Table II architectures and all three
simulation policies, plus the noise-model and shared-writer special paths.

The plan-cache tests cover the static-precomputation memoisation: one
:class:`~repro.arch.batch.ExecutionPlan` per (trace columns, model
geometry), shared across thread counts, controllers and the vector engine,
and the runtime's static instance lists memoised alongside it.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.arch.config import high_performance_config, low_power_config
from repro.core.config import lazy_config, periodic_config
from repro.core.controller import TaskPointController
from repro.runtime.runtime import RuntimeSystem
from repro.sim.engine import SimulationEngine
from repro.trace.generator import TraceBuilder
from repro.trace.records import MemoryEvent
from repro.workloads.registry import get_workload, list_workloads

SCALE = 0.01
SEED = 2
THREADS = 8

_ARCHITECTURES = {
    "highperf": high_performance_config,
    "lowpower": low_power_config,
}


def _controller(mode: str):
    if mode == "detailed":
        return None
    if mode == "periodic":
        return TaskPointController(config=periodic_config())
    return TaskPointController(config=lazy_config())


def _fingerprint(result) -> str:
    blob = ",".join(
        f"{i.instance_id}:{i.worker_id}:{i.mode.value}:{i.start_cycle.hex()}"
        f":{i.end_cycle.hex()}:{i.ipc.hex()}:{int(i.is_warmup)}"
        for i in result.instances
    )
    return (
        f"{result.total_cycles.hex()}|{result.num_instances}|"
        f"{result.cost.detailed_instances}|{result.cost.burst_instances}|"
        f"{result.cost.detailed_instructions}|"
        f"{result.cost.detailed_memory_events}|"
        + hashlib.sha256(blob.encode()).hexdigest()
    )


def _memory_stats(engine) -> tuple:
    """Cache/interconnect/DRAM statistics of an engine, as comparable data."""
    memory = engine.memory_system
    caches = []
    for core_id in range(engine.num_threads):
        view = memory.hierarchy(core_id)
        for cache in view.private_caches:
            stats = cache.stats
            caches.append((core_id, stats.hits, stats.misses, stats.evictions,
                           stats.writebacks, stats.invalidations))
    for cache in memory.hierarchy(0).shared_caches:
        stats = cache.stats
        caches.append(("shared", stats.hits, stats.misses, stats.evictions,
                       stats.writebacks, stats.invalidations))
    ic = memory.interconnect.stats
    dram = memory.dram.stats
    return (tuple(caches), ic.transfers, ic.total_latency.hex(),
            dram.requests, dram.total_latency.hex())


def _tag_stores(engine) -> tuple:
    """Final tag-store contents (LRU order, dirty bits, owners) per cache."""
    memory = engine.memory_system
    stores = []
    for core_id in range(engine.num_threads):
        view = memory.hierarchy(core_id)
        for level, cache in enumerate(view.caches):
            if level >= len(view.private_caches) and core_id > 0:
                continue  # shared levels once
            for set_index in sorted(cache._sets):
                lines = cache._sets[set_index]
                if not lines:
                    continue
                stores.append((
                    core_id, level, set_index,
                    tuple((tag, line.dirty, line.owner)
                          for tag, line in lines.items()),
                ))
    return tuple(stores)


def _run(trace, arch_name: str, mode: str, noise_model=None,
         threads: int = THREADS, **flags):
    engine = SimulationEngine(
        trace,
        _ARCHITECTURES[arch_name](),
        num_threads=threads,
        controller=_controller(mode),
        noise_model=noise_model,
        **flags,
    )
    result = engine.run()
    if engine.vector is not None:
        # Materialise any remaining plane-resident rows into the dict
        # working copies (the lazy export) so the oracle comparison covers
        # the final cache contents too.
        engine.vector.flush_state()
    return engine, result


def _assert_equivalent(trace, arch_name: str, mode: str, noise_model=None,
                       threads: int = THREADS):
    grouped, grouped_result = _run(trace, arch_name, mode, noise_model,
                                   threads=threads)
    oracle, oracle_result = _run(
        trace, arch_name, mode, noise_model, threads=threads,
        use_batched=False
    )
    assert _fingerprint(grouped_result) == _fingerprint(oracle_result)
    assert _memory_stats(grouped) == _memory_stats(oracle)
    assert _tag_stores(grouped) == _tag_stores(oracle)


# ---------------------------------------------------------------------------
# Full-registry equivalence: every workload x architecture, detailed mode.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("arch_name", sorted(_ARCHITECTURES))
@pytest.mark.parametrize("workload", list_workloads())
def test_vector_path_matches_oracle_all_workloads(workload, arch_name):
    trace = get_workload(workload).generate(scale=SCALE, seed=SEED)
    _assert_equivalent(trace, arch_name, "detailed")


# ---------------------------------------------------------------------------
# Sampling policies on a structurally diverse subset.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["periodic", "lazy"])
@pytest.mark.parametrize(
    "workload", ["cholesky", "blackscholes", "histogram", "3d-stencil"]
)
def test_vector_path_matches_oracle_sampled(workload, mode):
    trace = get_workload(workload).generate(scale=SCALE, seed=SEED)
    _assert_equivalent(trace, "highperf", mode)


# ---------------------------------------------------------------------------
# Special paths: noise model, shared-data writers, scalar grouped backend.
# ---------------------------------------------------------------------------
def test_vector_path_matches_oracle_with_noise():
    trace = get_workload("cholesky").generate(scale=SCALE, seed=SEED)

    def noise(instance):
        return 1.0 + (instance.instance_id % 5) * 0.07

    _assert_equivalent(trace, "highperf", "detailed", noise_model=noise)


def test_shared_writer_workload_matches_oracle():
    # histogram writes shared bins: its writer records are non-commuting and
    # exercise the flush + fallback/execute_writer path.
    trace = get_workload("histogram").generate(scale=0.02, seed=SEED)
    for arch_name in ("highperf", "lowpower"):
        _assert_equivalent(trace, arch_name, "detailed")
    assert bool(trace.columns.event_shared.any()), (
        "histogram no longer touches shared data; pick another workload "
        "for the shared-writer equivalence test"
    )


# ---------------------------------------------------------------------------
# Eviction-storm synthetic workload: set-conflict-heavy access pattern.
# ---------------------------------------------------------------------------
#: Line-number stride that collides in every cache level of both Table II
#: architectures: a common multiple of every ``num_sets`` (64/4096/16384
#: private-to-shared on high-performance, 256/1024 on low-power), so all
#: strided lines land in the same set index at every level.
_STORM_STRIDE_LINES = 16384
_STORM_LINE_BYTES = 64


def _eviction_storm_trace(num_instances: int = 96, seed: int = 3):
    """Synthetic trace whose accesses hammer a handful of cache sets.

    Every event's line number is ``set + tag * _STORM_STRIDE_LINES`` with
    only four distinct set values and more distinct tags per set than any
    level's associativity (L3 is 20-way), so both architectures evict and
    write back on nearly every access — the worst case for the eviction
    path of the scalar walks and for the kernel's LRU-victim selection.
    Independent instances keep dispatch groups wide; every sixteenth
    instance writes shared data, exercising the coherence replay and the
    non-commuting writer dispatch as well.
    """
    builder = TraceBuilder(name="eviction-storm", seed=seed)
    for i in range(num_instances):
        target_set = i % 4
        shared_writer = i % 16 == 5
        events = []
        for k in range(24):
            tag = 1 + (i * 7 + k * 5) % 96
            address = (
                target_set + tag * _STORM_STRIDE_LINES
            ) * _STORM_LINE_BYTES
            if shared_writer and k % 6 == 0:
                events.append(
                    MemoryEvent(address, is_write=True, weight=2, shared=True)
                )
            else:
                events.append(
                    MemoryEvent(address, is_write=(k % 3 == 0), weight=2)
                )
        builder.add_task("storm", instructions=4000, memory_events=events)
    return builder.build()


@pytest.mark.parametrize("mode", ["detailed", "periodic", "lazy"])
@pytest.mark.parametrize("arch_name", sorted(_ARCHITECTURES))
@pytest.mark.parametrize("threads", [8, 32, 64])
def test_eviction_storm_matches_oracle(threads, arch_name, mode):
    trace = _eviction_storm_trace()
    _assert_equivalent(trace, arch_name, mode, threads=threads)


def test_eviction_storm_actually_storms():
    # The synthetic pattern only earns its keep if it keeps evicting: every
    # cache level must see at least as many evictions as capacity of the
    # four hammered sets allows.
    trace = _eviction_storm_trace()
    engine, _ = _run(trace, "highperf", "detailed", threads=8)
    memory = engine.memory_system
    for cache in memory.hierarchy(0).private_caches + memory.shared_caches:
        assert cache.stats.evictions > 100, (
            f"{cache.name} saw only {cache.stats.evictions} evictions; the "
            "storm trace no longer conflicts in this geometry"
        )


def test_scalar_grouped_backend_matches_oracle():
    # use_vector=False: grouped dispatch disabled entirely; use_batched=True
    # scalar executor against the per-record oracle.
    trace = get_workload("blackscholes").generate(scale=SCALE, seed=SEED)
    batched, batched_result = _run(trace, "highperf", "detailed",
                                   use_vector=False)
    oracle, oracle_result = _run(trace, "highperf", "detailed",
                                 use_batched=False)
    assert _fingerprint(batched_result) == _fingerprint(oracle_result)
    assert _memory_stats(batched) == _memory_stats(oracle)
    assert _tag_stores(batched) == _tag_stores(oracle)


def test_vector_stats_cover_all_detailed_instances():
    trace = get_workload("cholesky").generate(scale=SCALE, seed=SEED)
    engine, result = _run(trace, "highperf", "detailed")
    stats = engine.vector_stats
    assert stats["vector_instances"] + stats["scalar_instances"] == len(trace)
    assert stats["groups"] >= 1
    assert 1 <= stats["max_group"] <= THREADS


# ---------------------------------------------------------------------------
# Plan-cache memoisation (static precomputation shared across engines).
# ---------------------------------------------------------------------------
def test_plan_cached_across_thread_counts_and_controllers():
    trace = get_workload("cholesky").generate(scale=SCALE, seed=SEED)
    arch = high_performance_config()
    first = SimulationEngine(trace, arch, num_threads=4)
    second = SimulationEngine(trace, arch, num_threads=16)
    sampled = SimulationEngine(
        trace, arch, num_threads=4,
        controller=TaskPointController(config=lazy_config()),
    )
    assert second.batched.plan is first.batched.plan
    assert sampled.batched.plan is first.batched.plan


def test_plan_cache_misses_on_geometry_change():
    trace = get_workload("cholesky").generate(scale=SCALE, seed=SEED)
    hp = SimulationEngine(trace, high_performance_config(), num_threads=4)
    lp = SimulationEngine(trace, low_power_config(), num_threads=4)
    assert hp.batched.plan is not lp.batched.plan
    # Both live side by side in the same per-columns cache.
    plans = [value for key, value in trace.columns.plan_cache.items()
             if isinstance(key, tuple) and key and key[0] == "batched-executor"]
    assert any(plan is hp.batched.plan for plan in plans)
    assert any(plan is lp.batched.plan for plan in plans)


def test_vector_engine_shares_batched_plan():
    trace = get_workload("cholesky").generate(scale=SCALE, seed=SEED)
    engine = SimulationEngine(trace, high_performance_config(),
                              num_threads=THREADS)
    assert engine.vector is not None
    assert engine.vector.plan is engine.batched.plan
    # The vector kernel gathers from the same geometry arrays the plan holds;
    # no per-engine copies.
    assert engine.vector.plan.level_set is engine.batched.plan.level_set


def test_runtime_static_lists_memoised_on_columns():
    trace = get_workload("cholesky").generate(scale=SCALE, seed=SEED)
    trace.columns.plan_cache.pop("runtime-lists", None)
    first = RuntimeSystem(trace)
    assert "runtime-lists" in trace.columns.plan_cache
    cached = trace.columns.plan_cache["runtime-lists"]
    second = RuntimeSystem(trace)
    assert trace.columns.plan_cache["runtime-lists"] is cached
    assert [i.instructions for i in first.tracker.instances] == [
        i.instructions for i in second.tracker.instances
    ]
