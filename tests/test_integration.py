"""End-to-end integration tests across the whole stack.

These tests reproduce, at a very small scale, the paper's central claims:
TaskPoint predicts execution time accurately (small error versus full
detailed simulation), is much cheaper than detailed simulation, and behaves
consistently across sampling policies, architectures and thread counts.
"""

import pytest

from repro import (
    compare_with_detailed,
    get_workload,
    high_performance_config,
    lazy_config,
    low_power_config,
    periodic_config,
    sampled_simulation,
    simulate,
)
from repro.analysis.variation import ipc_variation
from repro.core.config import TaskPointConfig
from repro.sim.modes import SimulationMode

SCALE = 0.02
SEED = 1


@pytest.fixture(scope="module")
def regular_trace():
    """A regular kernel: per-type IPC is homogeneous, sampling should excel."""
    return get_workload("2d-convolution").generate(scale=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def irregular_trace():
    """An application with dependencies and several task types."""
    return get_workload("cholesky").generate(scale=SCALE, seed=SEED)


class TestHeadlineClaims:
    def test_lazy_sampling_accurate_and_fast_on_regular_kernel(self, regular_trace):
        comparison = compare_with_detailed(
            regular_trace, num_threads=8, config=lazy_config()
        )
        assert comparison.error_percent < 3.0
        assert comparison.speedup > 5.0

    def test_periodic_sampling_accurate_on_application(self, irregular_trace):
        comparison = compare_with_detailed(
            irregular_trace, num_threads=8, config=periodic_config()
        )
        assert comparison.error_percent < 10.0
        assert comparison.speedup > 1.0

    def test_sampled_total_time_close_in_both_architectures(self, regular_trace):
        for architecture in (high_performance_config(), low_power_config()):
            comparison = compare_with_detailed(
                regular_trace, num_threads=4, architecture=architecture,
                config=lazy_config(),
            )
            assert comparison.error_percent < 5.0, architecture.name

    def test_speedup_decreases_with_thread_count(self, regular_trace):
        speedups = []
        for threads in (1, 8, 32):
            comparison = compare_with_detailed(
                regular_trace, num_threads=threads, config=lazy_config()
            )
            speedups.append(comparison.speedup)
        assert speedups[0] > speedups[1] > speedups[2]

    def test_low_power_slower_than_high_performance(self, regular_trace):
        high = simulate(regular_trace, num_threads=4,
                        architecture=high_performance_config())
        low = simulate(regular_trace, num_threads=4, architecture=low_power_config())
        assert low.total_cycles > high.total_cycles


class TestSamplingBehaviour:
    def test_most_instances_fast_forwarded(self, regular_trace):
        result = sampled_simulation(regular_trace, num_threads=4, config=lazy_config())
        stats = result.metadata["taskpoint"]
        assert stats.fast_forwarded > 0.7 * len(regular_trace)
        assert stats.warmup_instances >= 4  # W=2 per participating thread

    def test_warmup_instances_not_valid_samples(self, regular_trace):
        result = sampled_simulation(regular_trace, num_threads=2, config=lazy_config())
        warmup = [i for i in result.instances if i.is_warmup]
        assert warmup
        assert all(i.mode is SimulationMode.DETAILED for i in warmup)

    def test_periodic_resamples_more_than_lazy(self):
        trace = get_workload("vector-operation").generate(scale=0.04, seed=SEED)
        lazy = sampled_simulation(trace, num_threads=1, config=lazy_config())
        periodic = sampled_simulation(
            trace, num_threads=1,
            config=TaskPointConfig(sampling_period=50),
        )
        lazy_stats = lazy.metadata["taskpoint"]
        periodic_stats = periodic.metadata["taskpoint"]
        assert periodic_stats.resamples > lazy_stats.resamples
        assert periodic_stats.detailed_instances > lazy_stats.detailed_instances

    def test_every_task_type_gets_sampled(self, irregular_trace):
        result = sampled_simulation(irregular_trace, num_threads=4, config=lazy_config())
        detailed_types = {i.task_type for i in result.detailed_instances}
        assert detailed_types == set(irregular_trace.task_types)

    def test_sampled_and_detailed_report_same_instance_count(self, irregular_trace):
        comparison = compare_with_detailed(
            irregular_trace, num_threads=4, config=lazy_config()
        )
        assert comparison.detailed.num_instances == comparison.sampled.num_instances


class TestVariationPipeline:
    def test_regular_kernel_classified_within_5_percent(self, regular_trace):
        report = ipc_variation(simulate(regular_trace, num_threads=4))
        assert report.within_5_percent

    def test_freqmine_classified_above_5_percent(self):
        trace = get_workload("freqmine").generate(scale=0.3, seed=SEED)
        report = ipc_variation(simulate(trace, num_threads=4))
        assert not report.within_5_percent
