"""Tests for CSV/JSON export of analysis results."""

import csv
import json

import pytest

from repro.analysis.accuracy import AccuracyResult
from repro.analysis.export import (
    accuracy_rows,
    export_accuracy,
    export_sweep,
    export_variation,
    sweep_rows,
    variation_rows,
    write_csv,
    write_json,
)
from repro.analysis.sweep import SweepPoint
from repro.analysis.variation import ipc_variation
from repro.sim.simulator import simulate

from tests.conftest import build_two_type_trace


def _accuracy_result(benchmark="bench", threads=8):
    return AccuracyResult(
        benchmark=benchmark,
        architecture="high-performance",
        num_threads=threads,
        error_percent=1.5,
        speedup=20.0,
        wall_speedup=None,
        detailed_cycles=1_000_000.0,
        sampled_cycles=1_015_000.0,
        detailed_fraction=0.05,
        resamples=1,
    )


class TestRowFlattening:
    def test_accuracy_rows(self):
        rows = accuracy_rows([_accuracy_result(), _accuracy_result(threads=16)])
        assert len(rows) == 2
        assert rows[0]["benchmark"] == "bench"
        assert rows[1]["threads"] == 16
        assert rows[0]["error_percent"] == 1.5

    def test_sweep_rows(self):
        points = [SweepPoint("W", 2, 1.0, 10.0, 10)]
        rows = sweep_rows(points)
        assert rows[0]["parameter"] == "W"
        assert rows[0]["value"] == 2

    def test_variation_rows(self):
        trace = build_two_type_trace(num_instances=40)
        reports = {"two-type": ipc_variation(simulate(trace, num_threads=2))}
        rows = variation_rows(reports)
        assert rows[0]["benchmark"] == "two-type"
        assert rows[0]["instances"] == 40
        assert isinstance(rows[0]["within_5_percent"], bool)


class TestWriters:
    def test_write_csv_roundtrip(self, tmp_path):
        path = write_csv(accuracy_rows([_accuracy_result()]), tmp_path / "acc.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 1
        assert rows[0]["benchmark"] == "bench"
        assert float(rows[0]["speedup"]) == 20.0

    def test_write_json_roundtrip(self, tmp_path):
        path = write_json(accuracy_rows([_accuracy_result()]), tmp_path / "acc.json")
        data = json.loads(path.read_text())
        assert data[0]["threads"] == 8

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "empty.csv")
        with pytest.raises(ValueError):
            write_json([], tmp_path / "empty.json")

    def test_export_dispatch_on_suffix(self, tmp_path):
        results = [_accuracy_result()]
        csv_path = export_accuracy(results, tmp_path / "out.csv")
        json_path = export_accuracy(results, tmp_path / "out.json")
        assert csv_path.suffix == ".csv"
        assert json.loads(json_path.read_text())[0]["benchmark"] == "bench"

    def test_export_sweep_and_variation(self, tmp_path):
        sweep_path = export_sweep([SweepPoint("P", 250, 1.2, 9.9, 10)],
                                  tmp_path / "sweep.csv")
        assert sweep_path.exists()
        trace = build_two_type_trace(num_instances=30)
        reports = {"two-type": ipc_variation(simulate(trace, num_threads=2))}
        variation_path = export_variation(reports, tmp_path / "variation.json")
        assert json.loads(variation_path.read_text())[0]["benchmark"] == "two-type"
