"""Tests for the experiment orchestration layer (``repro.exp``)."""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis.accuracy import evaluate_benchmark, evaluate_grid
from repro.analysis.sweep import warmup_sweep
from repro.arch.config import high_performance_config, low_power_config
from repro.core.config import TaskPointConfig, lazy_config, periodic_config
from repro.exp import (
    ExperimentExecutionError,
    ExperimentFailure,
    ExperimentResult,
    ExperimentSpec,
    MemoryResultStore,
    ProcessPoolBackend,
    ResultStore,
    SerialBackend,
    run_experiments,
    run_spec,
)
from repro.workloads.registry import get_workload

from exp_helpers import deterministic_fields

SCALE = 0.004


def small_spec(benchmark="swaptions", threads=2, config=lazy_config(), **kwargs):
    return ExperimentSpec(
        benchmark=benchmark, num_threads=threads, scale=SCALE, trace_seed=1,
        config=config, **kwargs,
    )


class CountingBackend:
    """Serial backend that records how many specs it actually executed."""

    def __init__(self):
        self.executed = 0
        self._serial = SerialBackend()

    def run(self, specs):
        self.executed += len(specs)
        return self._serial.run(specs)


class FailingBackend:
    """Backend that must never be reached (warm-cache assertions)."""

    def run(self, specs):
        raise AssertionError(f"backend was asked to run {len(specs)} specs")


class TestExperimentSpec:
    def test_frozen_and_hashable(self):
        spec = small_spec()
        assert spec == small_spec()
        assert hash(spec) == hash(small_spec())
        assert len({spec, small_spec(), spec.baseline()}) == 2
        with pytest.raises(AttributeError):
            spec.num_threads = 4

    def test_default_architecture_normalised(self):
        explicit = small_spec(architecture=high_performance_config())
        implicit = small_spec(architecture=None)
        assert explicit == implicit
        assert explicit.content_key() == implicit.content_key()
        assert implicit.architecture.name == "high-performance"

    def test_baseline_and_sampled(self):
        spec = small_spec(config=periodic_config())
        baseline = spec.baseline()
        assert not spec.is_detailed
        assert baseline.is_detailed
        assert baseline.baseline() == baseline
        assert baseline.sampled(periodic_config()) == spec

    def test_json_round_trip_preserves_key(self):
        for spec in (
            small_spec(),
            small_spec(config=None),
            small_spec(architecture=low_power_config(), threads=3),
            small_spec(scheduler="random", scheduler_seed=7),
        ):
            payload = json.loads(json.dumps(spec.to_dict()))
            restored = ExperimentSpec.from_dict(payload)
            assert restored == spec
            assert restored.content_key() == spec.content_key()

    def test_content_key_distinguishes_experiments(self):
        base = small_spec()
        variants = [
            base.baseline(),
            small_spec(threads=4),
            small_spec(benchmark="vector-operation"),
            small_spec(config=periodic_config()),
            small_spec(architecture=low_power_config()),
            small_spec(scheduler_seed=3),
            ExperimentSpec("swaptions", num_threads=2, scale=0.005, trace_seed=1,
                           config=lazy_config()),
        ]
        keys = {spec.content_key() for spec in variants}
        assert base.content_key() not in keys
        assert len(keys) == len(variants)

    def test_content_key_stability(self):
        # Golden digest: guards the content-key scheme itself.  If a spec or
        # config field changes meaning, bump SPEC_SCHEMA_VERSION (which
        # invalidates on-disk caches) and regenerate this constant.
        spec = ExperimentSpec(
            "swaptions", num_threads=2, scale=0.004, trace_seed=1,
            architecture=high_performance_config(), config=lazy_config(),
        )
        assert spec.content_key() == (
            "af759e1b6427c93819939c3afcf85e7d8f34f30a7b3891c32eec413a89b4603f"
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentSpec("swaptions", num_threads=0)
        with pytest.raises(ValueError):
            ExperimentSpec("swaptions", num_threads=1, scale=0.0)


class TestRunSpec:
    def test_detailed_and_sampled(self):
        sampled = run_spec(small_spec())
        detailed = run_spec(small_spec().baseline())
        assert sampled.benchmark == detailed.benchmark == "swaptions"
        assert sampled.taskpoint is not None
        assert detailed.taskpoint is None
        assert sampled.resamples >= 0
        assert detailed.total_cycles > 0
        assert sampled.speedup_versus(detailed) > 1.0
        assert 0.0 <= sampled.error_versus(detailed) < 1.0
        assert sampled.ipc_by_type()  # measured samples exist

    def test_result_json_round_trip(self):
        result = run_spec(small_spec())
        payload = json.loads(json.dumps(result.to_dict()))
        restored = ExperimentResult.from_dict(payload)
        assert restored == result

    def test_resampling_result_json_round_trip(self):
        # Regression: resample_reasons used to be keyed by ResampleReason
        # enum members, which json.dumps rejects — so any resampling run
        # crashed the store and the worker wire format.
        config = TaskPointConfig(warmup_instances=1, history_size=2,
                                 sampling_period=5)
        result = run_spec(small_spec(benchmark="cholesky", config=config))
        assert result.resamples > 0, "config was meant to force resampling"
        payload = json.loads(json.dumps(result.to_dict()))
        restored = ExperimentResult.from_dict(payload)
        assert restored == result
        assert all(
            isinstance(reason, str)
            for reason in restored.taskpoint["resample_reasons"]
        )

    def test_matches_direct_comparison(self):
        """run_spec pairs reproduce compare_with_detailed exactly."""
        trace = get_workload("swaptions").generate(scale=SCALE, seed=1)
        reference = evaluate_benchmark(trace, num_threads=2, config=lazy_config())
        sampled = run_spec(small_spec())
        detailed = run_spec(small_spec().baseline())
        assert sampled.error_versus(detailed) * 100.0 == reference.error_percent
        assert sampled.speedup_versus(detailed) == reference.speedup
        assert detailed.total_cycles == reference.detailed_cycles
        assert sampled.total_cycles == reference.sampled_cycles


class TestWarmedTraceMemo:
    def test_memo_returns_one_warmed_instance(self):
        from repro.exp.runner import get_trace

        first = get_trace("swaptions", SCALE, 1)
        second = get_trace("swaptions", SCALE, 1)
        assert second is first
        # Running a spec on the memoised trace warms its plan cache, and the
        # warmed state is visible through later get_trace calls — the whole
        # point of the worker-side memo.
        run_spec(small_spec().baseline())
        assert any(
            isinstance(key, tuple) and key and key[0] == "batched-executor"
            for key in get_trace("swaptions", SCALE, 1).columns.plan_cache
        )
        assert "runtime-lists" in get_trace("swaptions", SCALE, 1).columns.plan_cache

    def test_memo_env_knob_disables_reuse(self, monkeypatch):
        from repro.exp.runner import TRACE_MEMO_ENV, get_trace

        warmed = get_trace("swaptions", SCALE, 1)
        monkeypatch.setenv(TRACE_MEMO_ENV, "0")
        fresh = get_trace("swaptions", SCALE, 1)
        assert fresh is not warmed
        assert fresh is not get_trace("swaptions", SCALE, 1)
        # Results stay identical either way; only the warm-up cost differs.
        cold = run_spec(small_spec().baseline())
        monkeypatch.delenv(TRACE_MEMO_ENV)
        warm = run_spec(small_spec().baseline())
        assert deterministic_fields(cold) == deterministic_fields(warm)


class TestBackendEquivalence:
    def grid(self):
        specs = []
        for benchmark in ("swaptions", "vector-operation"):
            for threads in (1, 2):
                spec = small_spec(benchmark=benchmark, threads=threads)
                specs.extend([spec, spec.baseline()])
        return specs

    def test_process_pool_matches_serial(self):
        specs = self.grid()
        serial = run_experiments(specs, backend=SerialBackend())
        pooled = run_experiments(specs, backend=ProcessPoolBackend(max_workers=2))
        assert len(serial) == len(pooled) == len(specs)
        for left, right in zip(serial, pooled):
            # Bit-identical cycles, costs and IPC samples regardless of the
            # backend; only host wall-clock time is allowed to differ.
            assert deterministic_fields(left) == deterministic_fields(right)

    def test_duplicate_specs_executed_once(self):
        spec = small_spec()
        backend = CountingBackend()
        results = run_experiments(
            [spec, spec.baseline(), spec, spec.baseline()], backend=backend
        )
        assert backend.executed == 2
        assert results[0] == results[2]
        assert results[1] == results[3]

    def test_pool_deduplicates_shared_baselines(self):
        spec_a = small_spec(config=lazy_config())
        spec_b = small_spec(config=periodic_config())
        results = run_experiments(
            [spec_a, spec_a.baseline(), spec_b, spec_b.baseline()],
            backend=ProcessPoolBackend(max_workers=2),
        )
        assert results[1] == results[3]  # one shared baseline result

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(max_workers=0)
        with pytest.raises(ValueError):
            ProcessPoolBackend(chunksize=0)


class TestFailureIsolation:
    """A raising spec is reported per-spec; the rest of the batch finishes.

    Regression for the latent ProcessPoolBackend gap: a spec whose workload
    raised used to propagate out of ``pool.map`` and poison the whole batch.
    """

    def poison(self):
        return small_spec(benchmark="no-such-benchmark")

    def batch(self):
        good = small_spec()
        return [good, self.poison(), good.baseline()]

    @pytest.mark.parametrize("make_backend_under_test", [
        SerialBackend,
        lambda: ProcessPoolBackend(max_workers=2),
    ], ids=["serial", "pool"])
    def test_remaining_specs_finish(self, make_backend_under_test):
        backend = make_backend_under_test()
        outcomes = backend.run_outcomes(self.batch())
        assert isinstance(outcomes[0], ExperimentResult)
        assert isinstance(outcomes[1], ExperimentFailure)
        assert isinstance(outcomes[2], ExperimentResult)
        assert outcomes[1].error_type == "KeyError"
        assert outcomes[1].spec_key == self.poison().content_key()
        assert "no-such-benchmark" in outcomes[1].message
        assert outcomes[1].traceback  # the full traceback is preserved

    @pytest.mark.parametrize("make_backend_under_test", [
        SerialBackend,
        lambda: ProcessPoolBackend(max_workers=2),
    ], ids=["serial", "pool"])
    def test_run_raises_aggregate_after_completion(self, make_backend_under_test):
        with pytest.raises(ExperimentExecutionError) as excinfo:
            make_backend_under_test().run(self.batch())
        assert len(excinfo.value.failures) == 1
        assert "no-such-benchmark" in str(excinfo.value)

    def test_run_experiments_records_failures_in_store(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = self.batch()
        results = run_experiments(
            specs, backend=ProcessPoolBackend(max_workers=2), store=store,
            on_error="record",
        )
        assert results[1] is None
        assert results[0] is not None and results[2] is not None
        assert len(store) == 2  # both healthy specs persisted
        failure = store.get_failure(self.poison())
        assert failure is not None and failure.error_type == "KeyError"
        # The failure is a diagnostic, not a cache entry: a re-run retries.
        assert store.get(self.poison()) is None

    def test_failure_round_trips_through_json(self):
        try:
            raise ValueError("broken workload")
        except ValueError as error:
            failure = ExperimentFailure.from_exception("abc123", error, attempts=2)
        restored = ExperimentFailure.from_dict(
            json.loads(json.dumps(failure.to_dict()))
        )
        assert restored == failure
        assert "broken workload" in restored.traceback

    def test_on_error_validation(self):
        with pytest.raises(ValueError):
            run_experiments([small_spec()], on_error="ignore")


class TestResultStore:
    def test_cold_then_warm(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        specs = [small_spec(), small_spec().baseline()]
        cold = run_experiments(specs, store=store)
        assert store.misses == 2 and store.hits == 0
        assert len(store) == 2
        # Warm rerun: zero new simulations — the backend must not be reached.
        # Served results carry no wall-clock time (cross-session provenance);
        # everything deterministic is identical.
        warm = run_experiments(specs, backend=FailingBackend(), store=store)
        assert [deterministic_fields(r) for r in warm] == [
            deterministic_fields(r) for r in cold
        ]
        assert all(result.wall_seconds is None for result in warm)
        assert store.hits == 2

    def test_persistence_across_store_instances(self, tmp_path):
        directory = tmp_path / "cache"
        spec = small_spec()
        first = run_experiments([spec], store=ResultStore(directory))
        second = run_experiments(
            [spec], backend=FailingBackend(), store=ResultStore(directory)
        )
        assert deterministic_fields(first[0]) == deterministic_fields(second[0])

    def test_len_ignores_leftover_temp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = small_spec()
        store.put(spec, run_spec(spec))
        (tmp_path / ".tmp-crashed.json").write_text("{}")
        assert len(store) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = small_spec()
        result = run_spec(spec)
        store.put(spec, result)
        key = spec.content_key()
        (tmp_path / ResultStore.shard(key) / f"{key}.json").write_text("not json")
        assert store.get(spec) is None
        store.put(spec, result)
        assert deterministic_fields(store.get(spec)) == deterministic_fields(result)

    def test_legacy_flat_entries_still_served(self, tmp_path):
        # Entries written by the pre-sharding layout (directly in the cache
        # root) must remain readable after the upgrade.
        sharded = ResultStore(tmp_path)
        spec = small_spec()
        result = run_spec(spec)
        sharded.put(spec, result)
        key = spec.content_key()
        sharded_path = tmp_path / ResultStore.shard(key) / f"{key}.json"
        (tmp_path / f"{key}.json").write_text(
            sharded_path.read_text(encoding="utf-8"), encoding="utf-8"
        )
        sharded_path.unlink()
        served = ResultStore(tmp_path).get(spec)
        assert served is not None
        assert deterministic_fields(served) == deterministic_fields(result)

    def test_memory_store(self):
        store = MemoryResultStore()
        spec = small_spec()
        assert store.get(spec) is None
        result = run_spec(spec)
        store.put(spec, result)
        assert store.get(spec) == result
        assert (store.hits, store.misses) == (1, 1)
        store.clear()
        assert len(store) == 0

    def test_memory_store_put_if_absent(self):
        store = MemoryResultStore()
        spec = small_spec()
        result = run_spec(spec)
        assert store.put_if_absent(spec, result) is True
        assert store.put_if_absent(spec, result) is False
        assert len(store) == 1

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = small_spec()
        store.put(spec, run_spec(spec))
        assert store.clear() == 1
        assert len(store) == 0

    def _failure(self, spec):
        return ExperimentFailure(
            spec_key=spec.content_key(), error_type="RuntimeError",
            message="transient breakage",
        )

    def test_put_removes_stale_failure_record(self, tmp_path):
        # Regression: a spec that failed once left its <key>.error.json
        # behind forever, even after a later run succeeded and stored the
        # real entry — every successful write must clear the diagnostic.
        store = ResultStore(tmp_path)
        spec = small_spec()
        store.record_failure(spec, self._failure(spec))
        assert store.get_failure(spec) is not None
        store.put(spec, run_spec(spec))
        assert store.get_failure(spec) is None
        key = spec.content_key()
        assert not (tmp_path / ResultStore.shard(key)
                    / f"{key}.error.json").exists()
        assert store.get(spec) is not None

    def test_put_if_absent_removes_stale_failure_record(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = small_spec()
        result = run_spec(spec)
        store.record_failure(spec, self._failure(spec))
        assert store.put_if_absent(spec, result) is True
        assert store.get_failure(spec) is None
        # The subtler residue path: the entry already exists (a sibling
        # writer won the race), a stale diagnostic appears afterwards, and
        # the losing put_if_absent must still clean it up on its False path.
        store.record_failure(spec, self._failure(spec))
        assert store.put_if_absent(spec, result) is False
        assert store.get_failure(spec) is None

    def test_memory_store_put_if_absent_removes_stale_failure(self):
        store = MemoryResultStore()
        spec = small_spec()
        result = run_spec(spec)
        store.record_failure(spec, self._failure(spec))
        assert store.put_if_absent(spec, result) is True
        assert store.get_failure(spec) is None
        store.record_failure(spec, self._failure(spec))
        assert store.put_if_absent(spec, result) is False
        assert store.get_failure(spec) is None


class TestCrossProcessDeterminism:
    """A spec must mean the same experiment in every process.

    The persistent result store and the process-pool backend both rely on
    trace generation being deterministic in (benchmark, scale, seed) alone —
    in particular it must not depend on the per-process string-hash
    randomisation (PYTHONHASHSEED).
    """

    SNIPPET = (
        "from repro.exp import run_spec, ExperimentSpec\n"
        "from repro.core.config import lazy_config\n"
        "spec = ExperimentSpec('histogram', num_threads=2, scale=0.004,"
        " trace_seed=1, config=lazy_config())\n"
        "r = run_spec(spec)\n"
        "print(repr(r.total_cycles), repr(r.cost.total_units))\n"
    )

    def _run_in_subprocess(self, hash_seed):
        env = dict(os.environ, PYTHONHASHSEED=str(hash_seed))
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in (env.get("PYTHONPATH"),) if p] + list(sys.path)
        )
        output = subprocess.run(
            [sys.executable, "-c", self.SNIPPET],
            capture_output=True, text=True, check=True, env=env,
        )
        return output.stdout.strip()

    def test_results_independent_of_hash_seed(self):
        first = self._run_in_subprocess(1)
        second = self._run_in_subprocess(4242)
        assert first == second


class TestSeedRegression:
    """The orchestrated grids reproduce the seed implementation's numbers."""

    def test_evaluate_grid_matches_seed_loop(self):
        benchmarks = ["swaptions", "vector-operation"]
        threads = [1, 2]
        new = evaluate_grid(benchmarks, threads, scale=SCALE, config=lazy_config())
        reference = []
        for name in benchmarks:
            trace = get_workload(name).generate(scale=SCALE, seed=1)
            for count in threads:
                reference.append(
                    evaluate_benchmark(trace, num_threads=count, config=lazy_config())
                )
        assert len(new) == len(reference)
        for ours, seed in zip(new, reference):
            assert (ours.benchmark, ours.num_threads) == (seed.benchmark, seed.num_threads)
            assert ours.error_percent == seed.error_percent
            assert ours.speedup == seed.speedup
            assert ours.detailed_cycles == seed.detailed_cycles
            assert ours.sampled_cycles == seed.sampled_cycles
            assert ours.detailed_fraction == seed.detailed_fraction
            assert ours.resamples == seed.resamples

    def test_warmup_sweep_matches_seed_loop(self):
        values = (0, 2)
        benchmarks = ("swaptions",)
        threads = (1, 2)
        points = warmup_sweep(
            warmup_values=values, benchmarks=benchmarks, thread_counts=threads,
            scale=SCALE,
        )
        trace = get_workload("swaptions").generate(scale=SCALE, seed=1)
        for point, value in zip(points, values):
            config = TaskPointConfig(
                warmup_instances=value, history_size=10, sampling_period=None
            )
            rows = [
                evaluate_benchmark(trace, num_threads=count, config=config)
                for name in benchmarks for count in threads
            ]
            errors = [row.error_percent for row in rows]
            speedups = [row.speedup for row in rows]
            assert point.value == value
            assert point.experiments == len(rows)
            assert point.average_error_percent == sum(errors) / len(errors)
            assert point.average_speedup == sum(speedups) / len(speedups)

    def test_sweep_shares_baselines(self):
        backend = CountingBackend()
        warmup_sweep(
            warmup_values=(0, 1, 2), benchmarks=("swaptions",), thread_counts=(1, 2),
            scale=SCALE, backend=backend,
        )
        # 3 values x 1 benchmark x 2 thread counts sampled runs, but only
        # 2 shared detailed baselines (one per thread count).
        assert backend.executed == 3 * 2 + 2


class TestTraceMemoBound:
    """The worker-side memo is a bounded LRU with observable counters."""

    def make_memo(self, capacity=2):
        from repro.exp.runner import TraceMemo

        return TraceMemo(capacity=capacity)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            self.make_memo(capacity=0)

    def test_bounded_with_lru_eviction(self):
        memo = self.make_memo(capacity=2)
        memo.get("swaptions", SCALE, 1)
        memo.get("vector-operation", SCALE, 1)
        memo.get("swaptions", SCALE, 1)  # refresh: swaptions is now newest
        memo.get("cholesky", SCALE, 1)   # evicts vector-operation, not swaptions
        assert len(memo) == 2
        assert memo.evictions == 1
        before = memo.hits
        memo.get("swaptions", SCALE, 1)
        assert memo.hits == before + 1
        memo.get("vector-operation", SCALE, 1)  # regenerated: a miss
        assert memo.misses == 4

    def test_stats_snapshot(self):
        memo = self.make_memo(capacity=2)
        memo.get("swaptions", SCALE, 1)
        memo.get("swaptions", SCALE, 1)
        stats = memo.stats()
        assert stats == {
            "capacity": 2, "entries": 1, "hits": 1, "misses": 1, "evictions": 0,
        }

    def test_clear_keeps_counters(self):
        memo = self.make_memo(capacity=2)
        memo.get("swaptions", SCALE, 1)
        memo.clear()
        assert len(memo) == 0
        assert memo.stats()["misses"] == 1

    def test_module_stats_exposed(self):
        from repro.exp.runner import get_trace, trace_memo_stats

        before = trace_memo_stats()
        get_trace("swaptions", SCALE, 1)
        after = trace_memo_stats()
        assert after["hits"] + after["misses"] > before["hits"] + before["misses"]
        assert set(after) == {"capacity", "entries", "hits", "misses", "evictions"}


class TestFailureDiagnostics:
    """A failed spec's diagnostics must carry the originating traceback.

    Regression tests for the broad ``except Exception`` handlers in the
    backends and the worker: condensing an exception into a message string
    alone made worker-side failures undebuggable.
    """

    def poison_spec(self):
        return ExperimentSpec(benchmark="no-such-benchmark", num_threads=2,
                              scale=SCALE, config=lazy_config())

    def test_failure_record_has_full_traceback(self, tmp_path):
        store = ResultStore(tmp_path)
        results = run_experiments(
            [self.poison_spec()], store=store, on_error="record"
        )
        assert results == [None]
        error_files = list(tmp_path.rglob("*.error.json"))
        assert len(error_files) == 1
        data = json.loads(error_files[0].read_text())["error"]
        assert data["error_type"] == "KeyError"
        assert "no-such-benchmark" in data["message"]
        # The traceback must reach the originating frame, not just repeat
        # the message: the registry lookup inside the runner.
        assert "get_workload" in data["traceback"]
        assert "Traceback (most recent call last)" in data["traceback"]
        # And the stored record round-trips through the typed accessor.
        failure = store.get_failure(self.poison_spec())
        assert failure is not None
        assert "get_workload" in failure.traceback

    def test_failure_round_trips_through_store(self, tmp_path):
        store = ResultStore(tmp_path)
        run_experiments([self.poison_spec()], store=store, on_error="record")

        class CountingOutcomeBackend:
            def __init__(self):
                self.executed = 0
                self._serial = SerialBackend()

            def run_outcomes(self, specs):
                self.executed += len(specs)
                return self._serial.run_outcomes(specs)

            def run(self, specs):
                raise AssertionError("run_outcomes should be preferred")

        # Failures are diagnostics, not cached results: a re-run retries.
        backend = CountingOutcomeBackend()
        results = run_experiments(
            [self.poison_spec()], store=store, backend=backend, on_error="record"
        )
        assert results == [None]
        assert backend.executed == 1
