"""Unit tests for the ROB-occupancy model and the detailed core model."""

import pytest

from repro.arch.config import CoreConfig, high_performance_config, low_power_config
from repro.arch.core import DetailedCoreModel
from repro.arch.hierarchy import MemorySystem
from repro.arch.rob import RobModel
from repro.trace.records import MemoryEvent, make_record


def make_rob(rob_size=168, issue_width=4):
    return RobModel(CoreConfig(rob_size=rob_size, issue_width=issue_width,
                               commit_width=issue_width), l1_latency=4.0)


class TestRobModel:
    def test_dispatch_cycles(self):
        rob = make_rob()
        assert rob.dispatch_cycles(400) == pytest.approx(100.0)
        assert rob.dispatch_cycles(0) == 0.0

    def test_no_memory_no_stall(self):
        timing = make_rob().block_cycles(1000, [])
        assert timing.stall_cycles == 0.0
        assert timing.total_cycles == pytest.approx(250.0)

    def test_short_latencies_fully_hidden(self):
        timing = make_rob().block_cycles(1000, [4.0, 3.0, 4.0])
        assert timing.stall_cycles == 0.0

    def test_long_latency_exposes_stall(self):
        rob = make_rob()
        timing = rob.block_cycles(100, [400.0])
        expected_exposed = 400.0 - rob.hide_capacity()
        assert timing.stall_cycles == pytest.approx(expected_exposed)

    def test_latency_below_hide_capacity_hidden(self):
        rob = make_rob(rob_size=168, issue_width=4)  # hide capacity 42 cycles
        timing = rob.block_cycles(100, [30.0])
        assert timing.stall_cycles == 0.0

    def test_mlp_overlaps_independent_misses(self):
        rob = make_rob()
        one = rob.block_cycles(100, [400.0]).stall_cycles
        many = rob.block_cycles(100, [400.0] * 4).stall_cycles
        # Four misses overlap: far less than four times the single-miss stall.
        assert many < 4 * one
        assert many >= one

    def test_smaller_rob_exposes_more_latency(self):
        big = make_rob(rob_size=168).block_cycles(100, [300.0]).stall_cycles
        small = make_rob(rob_size=40, issue_width=3).block_cycles(100, [300.0]).stall_cycles
        assert small > big

    def test_weights_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_rob().block_cycles(10, [100.0], memory_weights=[1, 2])

    def test_repeated_accesses_add_small_cost(self):
        rob = make_rob()
        without = rob.block_cycles(100, [400.0], memory_weights=[1]).total_cycles
        with_repeat = rob.block_cycles(100, [400.0], memory_weights=[50]).total_cycles
        assert with_repeat > without


class TestDetailedCoreModel:
    def _model(self, config=None, cores=1):
        config = config or high_performance_config()
        system = MemorySystem(config, num_cores=cores)
        rob = RobModel(config.core, l1_latency=config.l1.latency_cycles)
        return DetailedCoreModel(0, system, rob), system

    def _record(self, instructions=10_000, events=16, region=0x100000):
        memory = [MemoryEvent(address=region + i * 64, weight=5) for i in range(events)]
        return make_record(0, "work", instructions, memory_events=memory, blocks_hint=4)

    def test_ipc_bounded_by_issue_width(self):
        model, _ = self._model()
        execution = model.execute(self._record())
        assert 0.0 < execution.ipc <= 4.0

    def test_repeat_execution_faster_due_to_warm_caches(self):
        model, _ = self._model()
        record = self._record()
        cold = model.execute(record)
        warm = model.execute(record)
        assert warm.cycles < cold.cycles
        assert warm.cache_misses < cold.cache_misses

    def test_contention_slows_execution(self):
        model_alone, _ = self._model(cores=4)
        record = self._record(events=32)
        alone = model_alone.execute(record, active_cores=1)
        model_contended, _ = self._model(cores=4)
        contended = model_contended.execute(record, active_cores=4)
        assert contended.cycles > alone.cycles

    def test_noise_scales_cycles(self):
        model, _ = self._model()
        record = self._record()
        base = model.execute(record)
        model_noise, _ = self._model()
        noisy = model_noise.execute(record, noise=1.5)
        assert noisy.cycles == pytest.approx(base.cycles * 1.5, rel=1e-6)

    def test_low_power_slower_than_high_performance(self):
        record = self._record(instructions=20_000, events=24)
        high, _ = self._model(high_performance_config())
        low, _ = self._model(low_power_config())
        assert low.execute(record).cycles > high.execute(record).cycles

    def test_empty_instance_still_positive_cycles(self):
        model, _ = self._model()
        record = make_record(0, "empty", 0)
        execution = model.execute(record)
        assert execution.cycles >= 1.0

    def test_shared_write_invalidates_remote_copies(self):
        config = high_performance_config()
        system = MemorySystem(config, num_cores=2)
        rob = RobModel(config.core, l1_latency=config.l1.latency_cycles)
        writer = DetailedCoreModel(0, system, rob)
        reader = DetailedCoreModel(1, system, rob)
        address = 0x700000
        shared_read = make_record(
            0, "reader", 1000, memory_events=[MemoryEvent(address=address, shared=True)]
        )
        reader.execute(shared_read)
        assert system.hierarchy(1).private_caches[0].probe(address) is True
        shared_write = make_record(
            0, "writer", 1000,
            memory_events=[MemoryEvent(address=address, is_write=True, shared=True)],
        )
        writer.execute(shared_write)
        assert system.hierarchy(1).private_caches[0].probe(address) is False
