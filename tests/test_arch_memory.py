"""Unit tests for DRAM, interconnect and the cache hierarchy / memory system."""

import pytest

from repro.arch.config import MemoryConfig, high_performance_config, low_power_config
from repro.arch.dram import DramModel
from repro.arch.hierarchy import MemorySystem
from repro.arch.interconnect import Interconnect


class TestDram:
    def test_latency_at_least_base(self):
        dram = DramModel(MemoryConfig(dram_latency_cycles=100))
        assert dram.access_latency(active_cores=1) >= 100

    def test_latency_grows_with_contention(self):
        dram = DramModel(MemoryConfig())
        low = dram.access_latency(active_cores=1)
        high = dram.access_latency(active_cores=32)
        assert high > low

    def test_latency_stays_finite_at_high_core_counts(self):
        dram = DramModel(MemoryConfig())
        assert dram.access_latency(active_cores=10_000) < 100_000

    def test_zero_active_cores_treated_as_one(self):
        dram = DramModel(MemoryConfig())
        assert dram.access_latency(active_cores=0) == pytest.approx(
            DramModel(MemoryConfig()).access_latency(active_cores=1)
        )

    def test_statistics(self):
        dram = DramModel(MemoryConfig())
        dram.access_latency(1)
        dram.access_latency(2)
        assert dram.stats.requests == 2
        assert dram.stats.average_latency > 0
        dram.reset_statistics()
        assert dram.stats.requests == 0


class TestInterconnect:
    def test_contention_linear_in_active_cores(self):
        config = MemoryConfig(interconnect_latency_cycles=10,
                              interconnect_contention_per_core=2.0)
        link = Interconnect(config)
        assert link.transfer_latency(1) == 10.0
        assert link.transfer_latency(5) == 10.0 + 2.0 * 4

    def test_statistics(self):
        link = Interconnect(MemoryConfig())
        link.transfer_latency(1)
        assert link.stats.transfers == 1
        link.reset_statistics()
        assert link.stats.transfers == 0


class TestMemorySystem:
    def test_high_perf_layout(self):
        system = MemorySystem(high_performance_config(), num_cores=4)
        assert len(system.hierarchies) == 4
        # L1 and L2 private, L3 shared.
        assert [cache.name for cache in system.hierarchy(0).private_caches] == ["L1", "L2"]
        assert [cache.name for cache in system.shared_caches] == ["L3"]
        # The shared cache object is literally shared between hierarchies.
        assert system.hierarchy(0).shared_caches[0] is system.hierarchy(3).shared_caches[0]

    def test_low_power_layout(self):
        system = MemorySystem(low_power_config(), num_cores=2)
        assert [cache.name for cache in system.hierarchy(0).private_caches] == ["L1"]
        assert [cache.name for cache in system.shared_caches] == ["L2"]

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            MemorySystem(high_performance_config(), num_cores=0)

    def test_access_latency_ordering(self):
        system = MemorySystem(high_performance_config(), num_cores=1)
        hierarchy = system.hierarchy(0)
        first = hierarchy.access(0x10000, is_write=False)
        second = hierarchy.access(0x10000, is_write=False)
        assert first.hit is False
        assert first.level == "DRAM"
        assert second.hit is True
        assert second.level == "L1"
        assert second.latency < first.latency

    def test_miss_latency_includes_dram(self):
        config = high_performance_config()
        system = MemorySystem(config, num_cores=1)
        result = system.hierarchy(0).access(0x2000, is_write=False)
        minimum = (
            config.l1.latency_cycles + config.l2.latency_cycles + config.l3.latency_cycles
            + config.memory.dram_latency_cycles
        )
        assert result.latency >= minimum

    def test_remote_invalidation(self):
        system = MemorySystem(high_performance_config(), num_cores=2)
        address = 0x8000
        system.hierarchy(0).access(address, is_write=False)
        system.hierarchy(1).access(address, is_write=False)
        system.invalidate_remote(writer_core=1, address=address)
        # Core 0 lost its private copies; core 1 keeps them.
        assert system.hierarchy(0).private_caches[0].probe(address) is False
        assert system.hierarchy(1).private_caches[0].probe(address) is True

    def test_reset_statistics(self):
        system = MemorySystem(high_performance_config(), num_cores=2)
        system.hierarchy(0).access(0x1234, is_write=False)
        system.reset_statistics()
        assert system.dram.stats.requests == 0
        for cache in system.hierarchy(0).private_caches:
            assert cache.stats.accesses == 0

    def test_cache_snapshot_structure(self):
        system = MemorySystem(low_power_config(), num_cores=2)
        system.hierarchy(1).access(0x40, is_write=True)
        snapshot = system.cache_snapshot()
        assert len(snapshot["private"]) == 2
        assert len(snapshot["shared"]) == 1
        assert "dram_avg_latency" in snapshot

    def test_low_power_two_level_miss_reaches_dram(self):
        system = MemorySystem(low_power_config(), num_cores=1)
        result = system.hierarchy(0).access(0xABCDE0, is_write=False)
        assert result.level == "DRAM"

    def test_hierarchy_occupancy_increases(self):
        system = MemorySystem(high_performance_config(), num_cores=1)
        hierarchy = system.hierarchy(0)
        assert hierarchy.occupancy() == 0.0
        for i in range(100):
            hierarchy.access(i * 64, is_write=False)
        assert hierarchy.occupancy() > 0.0
