"""Shared helpers for the ``repro.exp`` test suites.

These two helpers define the repository's *byte-identity convention* — what
"the same results" means across backends, batch sizes, hosts and hash seeds —
so they live in exactly one place:

* :func:`deterministic_fields` — a result payload minus host wall-clock time
  (the only field that legitimately differs between runs);
* :func:`store_result_bytes` — the raw bytes of every *result* entry of an
  on-disk :class:`~repro.exp.store.ResultStore`.  Failure diagnostics
  (``*.error.json``) are excluded: they embed tracebacks, which legitimately
  differ between an in-process raise and a worker-side raise.

Importable as ``from exp_helpers import ...`` because pytest puts this
directory on ``sys.path`` for the suites here (there is no ``__init__.py``).
"""

import pathlib


def deterministic_fields(result):
    """Result payload minus host wall-clock time (the only noisy field)."""
    payload = result.to_dict()
    payload.pop("wall_seconds")
    return payload


def store_result_bytes(directory):
    """Relative path -> bytes for every *result* entry (errors excluded)."""
    root = pathlib.Path(directory)
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in root.rglob("*.json")
        if not any(part.startswith(".") for part in path.relative_to(root).parts)
        and not path.name.endswith(".error.json")
    }
