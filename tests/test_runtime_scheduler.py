"""Unit tests for the dynamic task schedulers and the runtime system."""

import pytest

from repro.runtime.runtime import RuntimeSystem
from repro.runtime.scheduler import (
    FifoScheduler,
    LocalityScheduler,
    RandomScheduler,
    make_scheduler,
)
from repro.runtime.task import TaskState

from tests.conftest import build_chain_trace, build_two_type_trace, build_uniform_trace


def ready_instances(trace, count):
    """Helper: pull the first ``count`` ready TaskInstances from a tracker."""
    runtime = RuntimeSystem(trace)
    instances = []
    for _ in range(count):
        instance = runtime.next_task(0)
        if instance is None:
            break
        instances.append(instance)
    return instances


class TestFifoScheduler:
    def test_fifo_order(self):
        scheduler = FifoScheduler()
        instances = ready_instances(build_uniform_trace(num_instances=3), 3)
        for instance in instances:
            scheduler.enqueue(instance)
        assert scheduler.pending() == 3
        assert scheduler.dequeue(0) is instances[0]
        assert scheduler.dequeue(1) is instances[1]
        assert scheduler.dequeue(0) is instances[2]
        assert scheduler.dequeue(0) is None


class TestLocalityScheduler:
    def test_prefers_last_type_per_worker(self):
        scheduler = LocalityScheduler()
        instances = ready_instances(build_two_type_trace(num_instances=6), 6)
        small = [i for i in instances if i.task_type.name == "small"]
        large = [i for i in instances if i.task_type.name == "large"]
        for instance in instances:
            scheduler.enqueue(instance)
        # Teach worker 0 that it last ran a "large" instance.
        scheduler.on_complete(0, large[0])
        picked = scheduler.dequeue(0)
        assert picked.task_type.name == "large"
        # A worker with no history falls back to FIFO order.
        assert scheduler.dequeue(1) is small[0]

    def test_falls_back_when_preferred_type_absent(self):
        scheduler = LocalityScheduler()
        instances = ready_instances(build_two_type_trace(num_instances=4), 4)
        small = [i for i in instances if i.task_type.name == "small"]
        scheduler.on_complete(0, [i for i in instances if i.task_type.name == "large"][0])
        for instance in small:
            scheduler.enqueue(instance)
        assert scheduler.dequeue(0) is small[0]


class TestRandomScheduler:
    def test_deterministic_for_fixed_seed(self):
        instances = ready_instances(build_uniform_trace(num_instances=10), 10)
        order_a = []
        order_b = []
        for order, seed in ((order_a, 5), (order_b, 5)):
            scheduler = RandomScheduler(seed=seed)
            for instance in instances:
                scheduler.enqueue(instance)
            while scheduler.pending():
                order.append(scheduler.dequeue(0).instance_id)
        assert order_a == order_b

    def test_different_seed_changes_order(self):
        instances = ready_instances(build_uniform_trace(num_instances=20), 20)
        orders = []
        for seed in (1, 2):
            scheduler = RandomScheduler(seed=seed)
            for instance in instances:
                scheduler.enqueue(instance)
            orders.append([scheduler.dequeue(0).instance_id for _ in range(20)])
        assert orders[0] != orders[1]
        assert sorted(orders[0]) == sorted(orders[1])

    def test_empty_returns_none(self):
        assert RandomScheduler().dequeue(0) is None


class TestMakeScheduler:
    def test_known_names(self):
        assert isinstance(make_scheduler("fifo"), FifoScheduler)
        assert isinstance(make_scheduler("locality"), LocalityScheduler)
        assert isinstance(make_scheduler("random", seed=3), RandomScheduler)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_scheduler("does-not-exist")


class TestRuntimeSystem:
    def test_initial_ready_tasks_enqueued(self):
        runtime = RuntimeSystem(build_uniform_trace(num_instances=4))
        assert runtime.pending_ready() == 4
        assert runtime.num_instances == 4
        assert not runtime.finished()

    def test_completion_releases_dependents(self):
        runtime = RuntimeSystem(build_chain_trace(length=3))
        first = runtime.next_task(0)
        assert first.instance_id == 0
        assert runtime.next_task(1) is None
        first.mark_running(0, 0.0)
        first.mark_completed(10.0)
        released = runtime.notify_completion(first, worker_id=0)
        assert [i.instance_id for i in released] == [1]
        assert runtime.pending_ready() == 1

    def test_finished_after_all_completed(self):
        runtime = RuntimeSystem(build_uniform_trace(num_instances=2))
        cycle = 0.0
        while not runtime.finished():
            instance = runtime.next_task(0)
            instance.mark_running(0, cycle)
            cycle += 10.0
            instance.mark_completed(cycle)
            runtime.notify_completion(instance, worker_id=0)
        assert runtime.num_completed == 2

    def test_task_types_exposed(self):
        runtime = RuntimeSystem(build_two_type_trace(num_instances=4))
        assert sorted(t.name for t in runtime.task_types) == ["large", "small"]
