"""Concurrent multi-process ``ResultStore`` tests (locking + sharding).

Simulates the multi-writer scenario the advisory locking and key-prefix
sharding exist for: several processes hammering the same store directory —
same keys, disjoint key prefixes, racing ``run_experiments`` drivers — must
produce a store that is byte-identical to a serial run of the same specs,
with no lost updates, no duplicate entries and no torn files.
"""

import json
import multiprocessing
import os
import pathlib
import time

from repro.core.config import lazy_config, periodic_config
from repro.exp import (
    ExperimentSpec,
    ResultStore,
    SerialBackend,
    run_experiments,
    run_spec,
)

from exp_helpers import store_result_bytes

SCALE = 0.004


def small_spec(benchmark="swaptions", threads=2, config=lazy_config(), **kwargs):
    return ExperimentSpec(
        benchmark=benchmark, num_threads=threads, scale=SCALE, trace_seed=1,
        config=config, **kwargs,
    )


def shared_grid():
    specs = []
    for benchmark in ("swaptions", "vector-operation"):
        for config in (lazy_config(), periodic_config()):
            spec = small_spec(benchmark=benchmark, config=config)
            specs.extend([spec, spec.baseline()])
    return specs


def no_temp_files(directory):
    return not list(pathlib.Path(directory).rglob(".tmp-*"))


# ----------------------------------------------------------------------
# Module-level worker functions (forked children resolve them by reference).

def _hammer_same_key(directory, barrier, iterations, payload):
    spec, result = payload
    store = ResultStore(directory)
    barrier.wait()
    for _ in range(iterations):
        store.put(spec, result)


def _put_disjoint(directory, barrier, payloads):
    store = ResultStore(directory)
    barrier.wait()
    for spec, result in payloads:
        store.put(spec, result)


def _put_if_absent_racer(directory, barrier, payload, wins):
    spec, result = payload
    store = ResultStore(directory)
    barrier.wait()
    if store.put_if_absent(spec, result):
        wins.put(result.num_instances)


def _run_grid(directory, barrier):
    barrier.wait()
    run_experiments(shared_grid(), backend=SerialBackend(),
                    store=ResultStore(directory))


def _count_executions(directory, counter_file):
    class CountingBackend:
        def __init__(self):
            self.executed = 0
            self._serial = SerialBackend()

        def run_outcomes(self, specs):
            self.executed += len(specs)
            return self._serial.run_outcomes(specs)

        def run(self, specs):
            self.executed += len(specs)
            return self._serial.run(specs)

    backend = CountingBackend()
    run_experiments(shared_grid(), backend=backend, store=ResultStore(directory))
    pathlib.Path(counter_file).write_text(str(backend.executed))


def _hold_lock(directory, key, events_file, barrier, hold_seconds):
    store = ResultStore(directory)
    with store.lock(key):
        _append_event(events_file, "A-acquired")
        barrier.wait()  # let B start contending while we hold the lock
        time.sleep(hold_seconds)
        _append_event(events_file, "A-releasing")


def _wait_lock(directory, key, events_file, barrier):
    store = ResultStore(directory)
    barrier.wait()
    time.sleep(0.1)  # ensure A is inside its critical section
    with store.lock(key):
        _append_event(events_file, "B-acquired")


def _append_event(path, label):
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(f"{label} {time.monotonic():.6f}\n")


def _start(target, *args):
    process = multiprocessing.Process(target=target, args=args)
    process.start()
    return process


def _join_all(processes, timeout=120):
    for process in processes:
        process.join(timeout=timeout)
        assert process.exitcode == 0


# ----------------------------------------------------------------------
class TestConcurrentWriters:
    def test_same_key_hammering_yields_one_clean_entry(self, tmp_path):
        spec = small_spec()
        result = run_spec(spec)
        barrier = multiprocessing.Barrier(4)
        processes = [
            _start(_hammer_same_key, str(tmp_path), barrier, 30, (spec, result))
            for _ in range(4)
        ]
        _join_all(processes)
        store = ResultStore(tmp_path)
        assert len(store) == 1
        assert no_temp_files(tmp_path)
        # The surviving entry is exactly what one serial put produces.
        reference_dir = tmp_path.parent / "reference"
        ResultStore(reference_dir).put(spec, result)
        assert store_result_bytes(tmp_path) == store_result_bytes(reference_dir)

    def test_disjoint_prefixes_no_lost_updates(self, tmp_path):
        # Four processes write disjoint spec sets (scattered across shards);
        # every single entry must survive.
        grids = []
        for threads in (1, 2, 3, 4):
            payloads = []
            for benchmark in ("swaptions", "histogram"):
                spec = small_spec(benchmark=benchmark, threads=threads)
                payloads.append((spec, run_spec(spec)))
            grids.append(payloads)
        barrier = multiprocessing.Barrier(len(grids))
        processes = [
            _start(_put_disjoint, str(tmp_path), barrier, payloads)
            for payloads in grids
        ]
        _join_all(processes)
        store = ResultStore(tmp_path)
        assert len(store) == sum(len(payloads) for payloads in grids)
        for payloads in grids:
            for spec, result in payloads:
                served = store.get(spec)
                assert served is not None
                assert served.total_cycles == result.total_cycles
        assert no_temp_files(tmp_path)

    def test_put_if_absent_has_exactly_one_winner(self, tmp_path):
        spec = small_spec()
        base = run_spec(spec)
        barrier = multiprocessing.Barrier(4)
        wins = multiprocessing.Queue()
        processes = []
        for marker in range(4):
            # Give each racer a distinguishable payload so the file tells us
            # who won; exactly one marker may reach the disk.
            result = run_spec(spec)
            result.num_instances = 10_000 + marker
            processes.append(
                _start(_put_if_absent_racer, str(tmp_path), barrier,
                       (spec, result), wins)
            )
        _join_all(processes)
        winners = []
        while not wins.empty():
            winners.append(wins.get())
        assert len(winners) == 1
        stored = ResultStore(tmp_path).get(spec)
        assert stored.num_instances == winners[0]
        assert base.num_instances not in winners  # sanity: markers applied

    def test_racing_drivers_byte_identical_to_serial(self, tmp_path):
        # Two whole run_experiments drivers race on one store; the result
        # must be indistinguishable from one serial run in a fresh store.
        shared_dir = tmp_path / "shared"
        barrier = multiprocessing.Barrier(2)
        processes = [
            _start(_run_grid, str(shared_dir), barrier) for _ in range(2)
        ]
        _join_all(processes)
        reference_dir = tmp_path / "reference"
        run_experiments(shared_grid(), backend=SerialBackend(),
                        store=ResultStore(reference_dir))
        shared_bytes = store_result_bytes(shared_dir)
        assert shared_bytes  # non-vacuous
        assert shared_bytes == store_result_bytes(reference_dir)
        unique = {spec.content_key() for spec in shared_grid()}
        assert len(ResultStore(shared_dir)) == len(unique)
        assert no_temp_files(shared_dir)

    def test_warm_store_is_shared_across_processes(self, tmp_path):
        # Process A fills the store; process B then re-runs the same grid
        # and must execute zero experiments (cross-process dedup).
        store_dir = tmp_path / "store"
        counter = tmp_path / "executed.txt"
        first = _start(_count_executions, str(store_dir), str(counter))
        _join_all([first])
        assert int(counter.read_text()) == len(
            {spec.content_key() for spec in shared_grid()}
        )
        second = _start(_count_executions, str(store_dir), str(counter))
        _join_all([second])
        assert int(counter.read_text()) == 0


class TestAdvisoryLock:
    def test_lock_is_exclusive_across_processes(self, tmp_path):
        key = small_spec().content_key()
        events_file = tmp_path / "events.log"
        events_file.touch()
        barrier = multiprocessing.Barrier(2)
        holder = _start(_hold_lock, str(tmp_path), key, str(events_file),
                        barrier, 0.5)
        waiter = _start(_wait_lock, str(tmp_path), key, str(events_file),
                        barrier)
        _join_all([holder, waiter])
        events = {}
        for line in events_file.read_text().splitlines():
            label, stamp = line.rsplit(" ", 1)
            events[label] = float(stamp)
        assert set(events) == {"A-acquired", "A-releasing", "B-acquired"}
        # B could not enter the critical section while A held the lock.
        assert events["B-acquired"] >= events["A-releasing"]

    def test_lock_reuses_one_file_per_shard(self, tmp_path):
        store = ResultStore(tmp_path)
        key = small_spec().content_key()
        with store.lock(key):
            pass
        with store.lock(key):
            pass
        lock_files = list((tmp_path / ".locks").iterdir())
        assert [path.name for path in lock_files] == [
            f"{ResultStore.shard(key)}.lock"
        ]
        # Lock files never masquerade as cache entries.
        assert len(store) == 0


class TestPutIfAbsentEdgeCases:
    def test_corrupt_entry_counts_as_absent(self, tmp_path):
        # get() treats a damaged file as a miss, so put_if_absent must be
        # willing to replace it — otherwise the store wedges on recomputing
        # a spec whose entry can never be served.
        store = ResultStore(tmp_path)
        spec = small_spec()
        result = run_spec(spec)
        store.put(spec, result)
        key = spec.content_key()
        entry = tmp_path / ResultStore.shard(key) / f"{key}.json"
        entry.write_text("not json")
        assert store.put_if_absent(spec, result) is True
        assert store.get(spec) is not None

    def test_legacy_flat_entry_counts_as_present(self, tmp_path):
        # An entry written by the pre-sharding layout must suppress a second
        # sharded copy of the same key.
        store = ResultStore(tmp_path)
        spec = small_spec()
        result = run_spec(spec)
        store.put(spec, result)
        key = spec.content_key()
        sharded = tmp_path / ResultStore.shard(key) / f"{key}.json"
        (tmp_path / f"{key}.json").write_text(
            sharded.read_text(encoding="utf-8"), encoding="utf-8"
        )
        sharded.unlink()
        assert store.put_if_absent(spec, result) is False
        assert len(store) == 1


class TestShardedLayout:
    def test_entries_land_in_key_prefix_shards(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = small_spec()
        store.put(spec, run_spec(spec))
        key = spec.content_key()
        entry = tmp_path / key[:2] / f"{key}.json"
        assert entry.is_file()
        payload = json.loads(entry.read_text(encoding="utf-8"))
        assert payload["result"]["spec_key"] == key
        # Normalisation: the persisted entry never carries host wall time.
        assert payload["result"]["wall_seconds"] is None

    def test_failure_records_live_next_to_their_entry(self, tmp_path):
        from repro.exp import ExperimentFailure

        store = ResultStore(tmp_path)
        spec = small_spec()
        failure = ExperimentFailure(
            spec_key=spec.content_key(), error_type="ValueError",
            message="boom",
        )
        store.record_failure(spec, failure)
        assert store.get(spec) is None  # failures are never served
        assert store.get_failure(spec).message == "boom"
        assert len(store) == 0  # diagnostics are not cache entries
        # A successful put supersedes the stale diagnostic.
        store.put(spec, run_spec(spec))
        assert store.get_failure(spec) is None
        assert len(store) == 1
