"""Unit tests for TaskPoint configuration, sample histories and fast-forward."""

import math

import pytest

from repro.core.config import TaskPointConfig, lazy_config, periodic_config
from repro.core.fastforward import FastForwardEstimator
from repro.core.history import (
    ConfidenceInterval,
    HistoryTable,
    SampleHistory,
    TaskTypeState,
    mean_confidence_interval,
    t_critical_95,
    unbiased_coefficient_of_variation,
    unbiased_std,
    unbiased_variance,
)
from repro.trace.records import make_record


class TestTaskPointConfig:
    def test_paper_defaults(self):
        config = TaskPointConfig()
        assert config.warmup_instances == 2
        assert config.history_size == 4
        assert config.sampling_period == 250
        assert config.rare_type_cutoff == 5
        assert not config.is_lazy

    def test_lazy_config(self):
        config = lazy_config()
        assert config.sampling_period is None
        assert config.is_lazy

    def test_periodic_config(self):
        assert periodic_config(sampling_period=100).sampling_period == 100

    def test_with_helpers(self):
        config = TaskPointConfig()
        assert config.with_period(None).is_lazy
        assert config.with_warmup(5).warmup_instances == 5
        assert config.with_history(9).history_size == 9
        # Original unchanged (frozen dataclass).
        assert config.history_size == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskPointConfig(warmup_instances=-1)
        with pytest.raises(ValueError):
            TaskPointConfig(history_size=0)
        with pytest.raises(ValueError):
            TaskPointConfig(sampling_period=0)
        with pytest.raises(ValueError):
            TaskPointConfig(rare_type_cutoff=0)
        with pytest.raises(ValueError):
            TaskPointConfig(thread_change_persistence=0)


class TestSampleHistory:
    def test_fifo_eviction(self):
        history = SampleHistory(capacity=3)
        for value in (1.0, 2.0, 3.0, 4.0):
            history.add(value)
        assert history.samples == [2.0, 3.0, 4.0]
        assert history.is_full
        assert len(history) == 3

    def test_mean(self):
        history = SampleHistory(capacity=4)
        assert history.mean() is None
        history.add(2.0)
        history.add(4.0)
        assert history.mean() == pytest.approx(3.0)

    def test_clear(self):
        history = SampleHistory(capacity=2)
        history.add(1.0)
        history.clear()
        assert history.is_empty
        assert history.mean() is None

    def test_rejects_non_positive_ipc(self):
        history = SampleHistory(capacity=2)
        with pytest.raises(ValueError):
            history.add(0.0)
        with pytest.raises(ValueError):
            history.add(-1.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SampleHistory(capacity=0)

    def test_coefficient_of_variation(self):
        history = SampleHistory(capacity=4)
        assert history.coefficient_of_variation() is None
        history.add(2.0)
        assert history.coefficient_of_variation() is None
        history.add(2.0)
        assert history.coefficient_of_variation() == pytest.approx(0.0)
        history.add(4.0)
        assert history.coefficient_of_variation() > 0.0


class TestTaskTypeState:
    def test_valid_and_all_histories(self):
        state = TaskTypeState.create("gemm", history_size=2)
        state.record_detailed(1.0, valid=False)
        assert state.all.samples == [1.0]
        assert state.valid.is_empty
        state.record_detailed(2.0, valid=True)
        assert state.valid.samples == [2.0]
        assert state.all.samples == [1.0, 2.0]
        assert state.detailed_count == 2

    def test_rare_until_valid_history_full(self):
        state = TaskTypeState.create("gemm", history_size=2)
        assert state.is_rare
        state.record_detailed(1.0, valid=True)
        assert state.is_rare
        state.record_detailed(1.0, valid=True)
        assert not state.is_rare
        assert state.is_fully_sampled

    def test_fast_forward_ipc_prefers_valid(self):
        state = TaskTypeState.create("gemm", history_size=2)
        assert state.fast_forward_ipc() is None
        state.record_detailed(1.0, valid=False)
        assert state.fast_forward_ipc() == pytest.approx(1.0)
        state.record_detailed(3.0, valid=True)
        assert state.fast_forward_ipc() == pytest.approx(3.0)

    def test_fast_forward_counter(self):
        state = TaskTypeState.create("gemm", history_size=2)
        state.record_fast_forward()
        state.record_fast_forward()
        assert state.fast_forwarded_count == 2


class TestHistoryTable:
    def test_state_created_on_demand(self):
        table = HistoryTable(history_size=4)
        assert not table.known("a")
        state = table.state("a")
        assert table.known("a")
        assert table.state("a") is state

    def test_all_fully_sampled(self):
        table = HistoryTable(history_size=1)
        assert not table.all_fully_sampled()  # no types observed yet
        table.state("a").record_detailed(1.0, valid=True)
        assert table.all_fully_sampled()
        table.state("b")
        assert not table.all_fully_sampled()

    def test_clear_valid_preserves_all(self):
        table = HistoryTable(history_size=2)
        table.state("a").record_detailed(2.0, valid=True)
        table.clear_valid()
        assert table.state("a").valid.is_empty
        assert not table.state("a").all.is_empty

    def test_mean_dispersion(self):
        table = HistoryTable(history_size=4)
        assert table.mean_dispersion() is None
        table.state("a").record_detailed(2.0, valid=True)
        table.state("a").record_detailed(2.0, valid=True)
        assert table.mean_dispersion() == pytest.approx(0.0)

    def test_invalid_history_size(self):
        with pytest.raises(ValueError):
            HistoryTable(history_size=0)


class TestFastForwardEstimator:
    def test_estimate_uses_type_mean_and_instructions(self):
        table = HistoryTable(history_size=2)
        table.state("work").record_detailed(2.0, valid=True)
        estimator = FastForwardEstimator(table)
        record = make_record(0, "work", instructions=1000)
        estimate = estimator.estimate(record)
        assert estimate.ipc == pytest.approx(2.0)
        assert estimate.cycles == pytest.approx(500.0)
        assert estimate.used_fallback is False

    def test_estimate_falls_back_to_all_history(self):
        table = HistoryTable(history_size=2)
        table.state("rare").record_detailed(4.0, valid=False)
        estimate = FastForwardEstimator(table).estimate(make_record(0, "rare", 400))
        assert estimate.used_fallback is True
        assert estimate.cycles == pytest.approx(100.0)

    def test_estimate_none_when_no_samples(self):
        table = HistoryTable(history_size=2)
        assert FastForwardEstimator(table).estimate(make_record(0, "new", 10)) is None

    def test_cycles_at_least_one(self):
        table = HistoryTable(history_size=2)
        table.state("tiny").record_detailed(100.0, valid=True)
        estimate = FastForwardEstimator(table).estimate(make_record(0, "tiny", 1))
        assert estimate.cycles >= 1.0


class TestCoefficientOfVariationSentinels:
    """Regression tests for the documented CoV return policy.

    ``None`` means "dispersion undefined" (< 2 samples); ``math.inf`` means
    "infinite relative dispersion" (zero mean).  The two must never be
    conflated: the controller treats ``None`` as "keep sampling" while an
    infinite CoV is a legitimate (maximally dispersed) measurement.
    """

    def test_none_below_two_samples(self):
        history = SampleHistory(capacity=4)
        assert history.coefficient_of_variation() is None
        history.add(2.0)
        assert history.coefficient_of_variation() is None
        history.add(2.0)
        assert history.coefficient_of_variation() == pytest.approx(0.0)

    def test_zero_mean_is_infinite_not_none(self):
        # add() rejects non-positive IPCs, so a zero-mean buffer can only be
        # produced by a generic (signed) sample set; drive the internals the
        # way such a caller would.
        history = SampleHistory(capacity=4)
        history._samples.extend([-1.0, 1.0])
        history._sum = 0.0
        history._cov_valid = False
        assert history.coefficient_of_variation() == math.inf

    def test_cov_cache_invalidated_by_add_and_clear(self):
        history = SampleHistory(capacity=4)
        history.add(1.0)
        history.add(3.0)
        first = history.coefficient_of_variation()
        history.add(2.0)
        assert history.coefficient_of_variation() != first
        history.clear()
        assert history.coefficient_of_variation() is None

    def test_legacy_cov_stays_biased(self):
        # ddof=0: pinned by the golden fingerprints.  [1, 3] has population
        # stddev 1.0 (not sqrt(2)) and mean 2.0.
        history = SampleHistory(capacity=4)
        history.add(1.0)
        history.add(3.0)
        assert history.coefficient_of_variation() == pytest.approx(0.5)


class TestUnbiasedEstimators:
    def test_unbiased_variance_uses_ddof_1(self):
        assert unbiased_variance([1.0, 3.0]) == pytest.approx(2.0)
        assert unbiased_std([1.0, 3.0]) == pytest.approx(math.sqrt(2.0))

    def test_unbiased_variance_requires_two_samples(self):
        with pytest.raises(ValueError):
            unbiased_variance([1.0])

    def test_unbiased_cov_mirrors_sentinel_policy(self):
        assert unbiased_coefficient_of_variation([]) is None
        assert unbiased_coefficient_of_variation([2.0]) is None
        assert unbiased_coefficient_of_variation([-1.0, 1.0]) == math.inf
        assert unbiased_coefficient_of_variation([1.0, 3.0]) == pytest.approx(
            math.sqrt(2.0) / 2.0
        )

    def test_biased_vs_unbiased_differ_by_bessel(self):
        values = [1.0, 2.0, 4.0]
        history = SampleHistory(capacity=8)
        for value in values:
            history.add(value)
        biased = history.coefficient_of_variation()
        unbiased = unbiased_coefficient_of_variation(values)
        assert unbiased == pytest.approx(biased * math.sqrt(3 / 2))


class TestConfidenceIntervals:
    def test_t_table_reference_values(self):
        assert t_critical_95(1) == pytest.approx(12.706, abs=1e-3)
        assert t_critical_95(4) == pytest.approx(2.776, abs=1e-3)
        assert t_critical_95(30) == pytest.approx(2.042, abs=1e-3)
        # Beyond the table: the normal quantile.
        assert t_critical_95(1000) == pytest.approx(1.960, abs=1e-3)

    def test_t_table_monotone_decreasing(self):
        values = [t_critical_95(df) for df in range(1, 40)]
        assert values == sorted(values, reverse=True)

    def test_t_requires_positive_df(self):
        with pytest.raises(ValueError):
            t_critical_95(0)

    def test_interval_bounds_and_covers(self):
        interval = ConfidenceInterval(mean=10.0, half_width=2.0)
        assert interval.lower == 8.0
        assert interval.upper == 12.0
        assert interval.covers(8.0) and interval.covers(12.0)
        assert not interval.covers(7.999)
        assert interval.level == 0.95

    def test_mean_confidence_interval(self):
        values = [1.0, 2.0, 3.0]
        interval = mean_confidence_interval(values)
        assert interval.mean == pytest.approx(2.0)
        expected = t_critical_95(2) * unbiased_std(values) / math.sqrt(3)
        assert interval.half_width == pytest.approx(expected)
        assert interval.covers(2.0)

    def test_mean_confidence_interval_requires_two_samples(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([5.0])
