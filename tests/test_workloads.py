"""Tests for the 19 benchmark workload generators (Table I)."""

import pytest

from repro.trace.trace import ApplicationTrace
from repro.workloads.base import Workload
from repro.workloads.registry import (
    APPLICATION_NAMES,
    KERNEL_NAMES,
    PARSEC_NAMES,
    SENSITIVITY_SUBSET,
    all_workloads,
    get_workload,
    list_workloads,
)

#: Paper Table I values: benchmark -> (task types, task instances).
TABLE1 = {
    "2d-convolution": (1, 16384),
    "3d-stencil": (1, 16370),
    "atomic-monte-carlo-dynamics": (1, 16384),
    "dense-matrix-multiplication": (1, 17576),
    "histogram": (1, 16384),
    "n-body": (2, 25000),
    "reduction": (2, 16384),
    "sparse-matrix-vector-multiplication": (1, 1024),
    "vector-operation": (1, 16400),
    "checkSparseLU": (11, 22058),
    "cholesky": (4, 19600),
    "kmeans": (6, 16337),
    "knn": (2, 18400),
    "blackscholes": (2, 24500),
    "bodytrack": (7, 21439),
    "canneal": (1, 16384),
    "dedup": (4, 15738),
    "freqmine": (7, 1932),
    "swaptions": (1, 16384),
}


class TestRegistry:
    def test_all_19_benchmarks_registered(self):
        names = list_workloads()
        assert len(names) == 19
        assert set(names) == set(TABLE1)

    def test_category_lists(self):
        assert len(KERNEL_NAMES) == 9
        assert len(APPLICATION_NAMES) == 4
        assert len(PARSEC_NAMES) == 6
        assert set(KERNEL_NAMES + APPLICATION_NAMES + PARSEC_NAMES) == set(TABLE1)

    def test_list_by_category(self):
        assert list_workloads("kernel") == KERNEL_NAMES
        assert list_workloads("parsec") == PARSEC_NAMES
        with pytest.raises(ValueError):
            list_workloads("unknown-category")

    def test_get_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("not-a-benchmark")

    def test_sensitivity_subset_is_subset(self):
        assert set(SENSITIVITY_SUBSET) <= set(TABLE1)
        assert len(SENSITIVITY_SUBSET) == 5

    def test_all_workloads_instantiates(self):
        workloads = all_workloads()
        assert len(workloads) == 19
        assert all(isinstance(workload, Workload) for workload in workloads)


class TestPaperProperties:
    @pytest.mark.parametrize("name", sorted(TABLE1))
    def test_info_matches_table1(self, name):
        info = get_workload(name).info()
        types, instances = TABLE1[name]
        assert info.paper_task_types == types
        assert info.paper_task_instances == instances
        assert info.category in {"kernel", "application", "parsec"}
        assert info.properties

    @pytest.mark.parametrize("name", sorted(TABLE1))
    def test_generated_trace_structure(self, name):
        workload = get_workload(name)
        trace = workload.generate(scale=0.01, seed=2)
        assert isinstance(trace, ApplicationTrace)
        trace.validate()
        stats = trace.statistics()
        # The generated number of task types matches Table I exactly.
        assert stats.num_task_types == TABLE1[name][0]
        assert stats.num_task_instances >= workload.min_instances
        assert stats.total_instructions > 0
        assert stats.total_memory_accesses > 0
        assert trace.metadata["scale"] == 0.01

    @pytest.mark.parametrize("name", sorted(TABLE1))
    def test_scale_controls_instance_count(self, name):
        workload = get_workload(name)
        small = workload.instances_for_scale(0.02)
        large = workload.instances_for_scale(0.2)
        assert large >= small
        assert workload.instances_for_scale(1.0) == pytest.approx(
            workload.paper_task_instances, rel=0.01, abs=2
        )

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            get_workload("cholesky").generate(scale=0.0)


class TestBehaviouralCharacteristics:
    def test_freqmine_dominant_type_is_heavy_tailed(self):
        trace = get_workload("freqmine").generate(scale=0.3, seed=1)
        stats = trace.statistics()
        dominant = stats.dominant_task_type
        assert dominant == "mine_conditional_tree"
        assert stats.instruction_share(dominant) > 0.8
        sizes = [r.instructions for r in trace.instances_of(dominant)]
        assert max(sizes) / min(sizes) > 50  # control-flow divergence

    def test_dedup_dominated_by_compression(self):
        trace = get_workload("dedup").generate(scale=0.05, seed=1)
        stats = trace.statistics()
        assert stats.dominant_task_type == "compress_chunk"
        assert stats.instruction_share("compress_chunk") > 0.8
        sizes = [r.instructions for r in trace.instances_of("compress_chunk")]
        assert max(sizes) / min(sizes) > 3  # input dependence

    def test_reduction_parallelism_decreases(self):
        trace = get_workload("reduction").generate(scale=0.01, seed=1)
        # A reduction tree has a logarithmic critical path, much longer than
        # an embarrassingly parallel kernel but far shorter than a chain.
        assert 3 < trace.critical_path_length() < len(trace) / 2

    def test_cholesky_has_wavefront_dependencies(self):
        trace = get_workload("cholesky").generate(scale=0.01, seed=1)
        assert trace.critical_path_length() > 5
        assert any(record.depends_on for record in trace)

    def test_embarrassingly_parallel_kernels_have_no_dependencies(self):
        for name in ("2d-convolution", "atomic-monte-carlo-dynamics", "canneal",
                     "swaptions"):
            trace = get_workload(name).generate(scale=0.005, seed=1)
            assert trace.critical_path_length() == 1, name

    def test_dedup_pipeline_dependencies(self):
        trace = get_workload("dedup").generate(scale=0.02, seed=1)
        # Pipeline: every compress depends on a hash, every write on a compress.
        by_id = {record.instance_id: record for record in trace}
        for record in trace:
            if record.task_type == "compress_chunk":
                assert any(
                    by_id[dep].task_type == "hash_chunk" for dep in record.depends_on
                )
            if record.task_type == "write_output":
                assert any(
                    by_id[dep].task_type == "compress_chunk" for dep in record.depends_on
                )

    def test_histogram_writes_shared_bins(self):
        trace = get_workload("histogram").generate(scale=0.005, seed=1)
        shared_writes = sum(
            1 for record in trace for event in record.memory_events
            if event.shared and event.is_write
        )
        assert shared_writes > 0

    def test_spmv_load_imbalance(self):
        trace = get_workload("sparse-matrix-vector-multiplication").generate(
            scale=1.0, seed=1
        )
        sizes = [record.instructions for record in trace]
        assert max(sizes) / min(sizes) > 2
