"""Tests for the online error-budget fidelity controller.

Covers the configuration surface, the per-type cost model and residual
criterion, the commit / probe / drift-re-open lifecycle, the per-worker
warm-up budgets, the thread-count trigger, the statistics summaries and the
experiment-spec wiring (serialisation round trips and ``run_spec``
dispatch).
"""

import json
import math

import pytest

from repro.core.controller import ResampleReason
from repro.core.fidelity import (
    FidelityConfig,
    FidelityController,
    FidelityStatistics,
    FidelityTypeState,
)
from repro.core.stratified import StratifiedConfig
from repro.exp.runner import run_spec
from repro.exp.spec import ExperimentResult, ExperimentSpec
from repro.runtime.task import TaskInstance, TaskType
from repro.sim.modes import AlwaysDetailedController, CompletionInfo, SimulationMode
from repro.sim.simulator import TaskSimSimulator
from repro.trace.records import make_record
from repro.trace.trace import ApplicationTrace


def uniform_trace(count=60, instructions=1000, task_type="alpha"):
    """A trace whose instances all share one signature: predictions are exact."""
    records = [
        make_record(i, task_type, instructions=instructions, blocks_hint=1)
        for i in range(count)
    ]
    return ApplicationTrace(name="uniform", records=records)


def mixed_trace(num_per_type=40, types=("alpha", "beta")):
    """A synthetic trace with deliberately heterogeneous instance sizes."""
    records = []
    instance_id = 0
    for type_index, task_type in enumerate(types):
        for i in range(num_per_type):
            records.append(
                make_record(
                    instance_id,
                    task_type,
                    instructions=500 + 400 * type_index + 37 * (i % 7),
                    blocks_hint=1 + (i % 3),
                )
            )
            instance_id += 1
    return ApplicationTrace(name="synthetic", records=records)


def make_instance(trace, instance_id, task_type=None):
    """A TaskInstance consistent with ``trace``'s columns (or a foreign one)."""
    columns = trace.columns
    if task_type is None and 0 <= instance_id < columns.num_records:
        type_id = int(columns.task_type_id[instance_id])
        name = columns.types.names[type_id]
        record = make_record(
            instance_id, name, int(columns.instructions[instance_id])
        )
        return TaskInstance(record=record, task_type=TaskType(name=name, type_id=type_id))
    name = task_type or "unseen-type"
    record = make_record(instance_id, name, 1000)
    return TaskInstance(record=record, task_type=TaskType(name=name, type_id=999))


def complete(controller, instance, decision, ipc=2.0, worker_id=0, active=1):
    controller.notify_completion(
        CompletionInfo(
            instance=instance,
            mode=decision.mode,
            cycles=instance.instructions / ipc,
            ipc=ipc if decision.mode is SimulationMode.DETAILED else decision.ipc,
            is_warmup=decision.is_warmup,
            start_cycle=0.0,
            end_cycle=instance.instructions / ipc,
            worker_id=worker_id,
            active_workers=active,
        )
    )


def drive(controller, trace, ids, ipc=2.0, worker_id=0, active=1):
    """Dispatch and complete the given instance ids in order; return decisions."""
    decisions = []
    for instance_id in ids:
        instance = make_instance(trace, instance_id)
        decision = controller.choose_mode(
            instance, worker_id=worker_id, active_workers=active,
            current_cycle=float(instance_id),
        )
        complete(controller, instance, decision, ipc=ipc,
                 worker_id=worker_id, active=active)
        decisions.append(decision)
    return decisions


def quick_config(**overrides):
    """A config that commits after three exact samples (no warm-up)."""
    defaults = dict(
        error_budget=0.02, min_samples=2, min_residuals=2, residual_window=4,
        probe_period=100, warmup_instances=0,
    )
    defaults.update(overrides)
    return FidelityConfig(**defaults)


class TestFidelityConfig:
    def test_defaults(self):
        config = FidelityConfig()
        assert 0.0 < config.error_budget < 1.0
        assert config.min_samples >= 1
        assert config.min_residuals >= 2
        assert config.residual_window >= config.min_residuals
        assert config.max_probe_period >= config.probe_period
        assert config.reopen_factor >= 1.0
        assert config.resample_on_thread_change

    def test_with_error_budget(self):
        config = FidelityConfig()
        assert config.with_error_budget(0.05).error_budget == 0.05
        assert config.error_budget != 0.05  # frozen original unchanged

    @pytest.mark.parametrize("kwargs", [
        {"error_budget": 0.0},
        {"error_budget": 1.0},
        {"min_samples": 0},
        {"min_residuals": 1},
        {"min_residuals": 8, "residual_window": 4},
        {"probe_period": 0},
        {"probe_period": 50, "max_probe_period": 25},
        {"reopen_factor": 0.9},
        {"share_floor": 0.0},
        {"allowance_cap": 0.5},
        {"warmup_instances": -1},
        {"resample_warmup_instances": -1},
        {"thread_change_tolerance": -0.1},
        {"thread_change_persistence": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FidelityConfig(**kwargs)


class TestTypeState:
    def test_no_prediction_before_any_sample(self):
        trace = uniform_trace(count=4)
        controller = FidelityController(trace, quick_config())
        state = controller._state("alpha")
        assert state.predict_cycles(controller._features[0], 1000.0) is None

    def test_model_degenerates_to_mean_cpi(self):
        # With one signature the min-norm fit reproduces the observed CPI.
        trace = uniform_trace(count=8)
        controller = FidelityController(trace, quick_config())
        drive(controller, trace, [0, 1], ipc=2.0)
        state = controller._state("alpha")
        predicted = state.predict_cycles(controller._features[2],
                                         controller._instructions[2])
        assert predicted == pytest.approx(1000.0 / 2.0)

    def test_criterion_needs_two_residuals(self):
        state = FidelityTypeState("alpha")
        assert state.criterion() is None

    def test_criterion_is_t_based(self):
        from collections import deque

        state = FidelityTypeState("alpha")
        state.residuals = deque([0.01, -0.01, 0.02, 0.0], maxlen=8)
        mean_abs, half_width = state.criterion()
        values = [0.01, -0.01, 0.02, 0.0]
        mean = sum(values) / len(values)
        assert mean_abs == pytest.approx(abs(mean))
        # t_crit(df=3) * s / sqrt(n) with ddof=1.
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        expected = 3.182 * math.sqrt(variance) / math.sqrt(len(values))
        assert half_width == pytest.approx(expected, rel=1e-3)


class TestCommitLifecycle:
    def test_commits_then_fast_forwards(self):
        trace = uniform_trace(count=30)
        controller = FidelityController(trace, quick_config())
        decisions = drive(controller, trace, range(10), ipc=2.0)
        # First samples are detailed; once the residual window certifies the
        # model the type commits and the rest fast-forward at the exact IPC.
        assert decisions[0].mode is SimulationMode.DETAILED
        assert decisions[-1].mode is SimulationMode.BURST
        assert decisions[-1].ipc == pytest.approx(2.0)
        state = controller._state("alpha")
        assert state.committed
        assert state.commits == 1
        assert controller.stats.transitions_to_fast == 1
        assert controller.stats.fast_forwarded > 0

    def test_warmup_instances_excluded_from_model(self):
        trace = uniform_trace(count=10)
        controller = FidelityController(trace, quick_config(warmup_instances=2))
        decisions = drive(controller, trace, range(4), ipc=2.0)
        assert [d.is_warmup for d in decisions] == [True, True, False, False]
        assert controller.stats.warmup_instances == 2
        assert controller._state("alpha").samples == 2

    def test_unseen_type_stays_detailed_without_global_resample(self):
        trace = uniform_trace(count=30)
        controller = FidelityController(trace, quick_config())
        drive(controller, trace, range(10), ipc=2.0)
        assert controller._state("alpha").committed
        foreign = make_instance(trace, trace.columns.num_records + 5,
                                task_type="unseen-type")
        decision = controller.choose_mode(foreign, worker_id=0,
                                          active_workers=1, current_cycle=1e6)
        assert decision.mode is SimulationMode.DETAILED
        complete(controller, foreign, decision, ipc=2.0)
        # Per-type isolation: the committed type stays committed and no
        # global resample fires; the off-trace completion is invalid.
        assert controller._state("alpha").committed
        assert controller.stats.resamples == 0
        assert controller.stats.invalid_samples == 1

    def test_zero_cycle_completion_is_floored(self):
        trace = uniform_trace(count=10)
        controller = FidelityController(trace, quick_config())
        instance = make_instance(trace, 0)
        decision = controller.choose_mode(instance, 0, 1, 0.0)
        controller.notify_completion(
            CompletionInfo(
                instance=instance, mode=decision.mode, cycles=0.0, ipc=0.0,
                is_warmup=decision.is_warmup, start_cycle=0.0, end_cycle=0.0,
                worker_id=0, active_workers=1,
            )
        )
        state = controller._state("alpha")
        assert state.samples == 1
        assert state.work_cycles >= 1.0
        assert controller.stats.valid_samples == 1


class TestProbesAndDrift:
    def test_probe_issued_and_spacing_stretches(self):
        trace = uniform_trace(count=60)
        controller = FidelityController(
            trace, quick_config(probe_period=4, max_probe_period=16)
        )
        drive(controller, trace, range(20), ipc=2.0)
        state = controller._state("alpha")
        assert state.committed
        assert state.probes >= 1
        # Clean probes double the spacing (up to the ceiling).
        assert state.probe_period > 4
        assert state.probe_period <= 16

    def test_drift_reopens_type_and_keeps_model(self):
        trace = uniform_trace(count=60)
        controller = FidelityController(trace, quick_config(probe_period=1))
        drive(controller, trace, range(6), ipc=2.0)
        state = controller._state("alpha")
        assert state.committed
        samples_before = state.samples
        # The workload shifts: probes now measure half the IPC the model was
        # fitted at, so the residual window walks outside the allowance.
        drift_ids = range(6, 20)
        drive(controller, trace, drift_ids, ipc=1.0)
        assert state.reopens >= 1
        assert controller.stats.resample_reasons[ResampleReason.DRIFT] >= 1
        # The drift re-open keeps the model: history is corrected, not
        # discarded.
        assert state.samples > samples_before
        assert state.theta is not None

    def test_reopened_type_recommits_at_new_regime(self):
        trace = uniform_trace(count=120)
        controller = FidelityController(trace, quick_config(probe_period=1))
        drive(controller, trace, range(6), ipc=2.0)
        drive(controller, trace, range(6, 40), ipc=1.0)
        state = controller._state("alpha")
        assert state.reopens >= 1
        # Continued sampling at the new IPC steers the fit back inside the
        # budget and the type commits again.
        drive(controller, trace, range(40, 110), ipc=1.0)
        assert state.committed
        assert state.commits >= 2


class TestThreadChange:
    def test_thread_change_reopens_all_types_keeping_models(self):
        trace = uniform_trace(count=60)
        controller = FidelityController(
            trace, quick_config(thread_change_persistence=2)
        )
        drive(controller, trace, range(10), ipc=2.0, active=4)
        state = controller._state("alpha")
        assert state.committed
        reasons = controller.stats.resample_reasons
        for step in range(3):
            instance = make_instance(trace, 10 + step)
            decision = controller.choose_mode(instance, worker_id=0,
                                              active_workers=1,
                                              current_cycle=1e6 + step)
            if reasons[ResampleReason.THREAD_COUNT_CHANGE]:
                break
        assert reasons[ResampleReason.THREAD_COUNT_CHANGE] == 1
        assert not state.committed
        # Model kept, residual window cleared: the new contention regime
        # must be re-certified from fresh residuals.
        assert state.theta is not None
        assert state.samples > 0
        assert not state.residuals
        assert controller._sampled_thread_count is None
        assert decision.mode is SimulationMode.DETAILED

    def test_warmup_budgets_after_thread_change(self):
        trace = uniform_trace(count=60)
        controller = FidelityController(
            trace,
            quick_config(warmup_instances=2, resample_warmup_instances=1),
        )
        drive(controller, trace, range(8), ipc=2.0, worker_id=0, active=1)
        controller._resample_thread_change()
        # Already-warmed worker 0 re-warms with the short budget...
        warm = drive(controller, trace, [20], worker_id=0)
        assert warm[0].is_warmup
        after = drive(controller, trace, [21], worker_id=0)
        assert not after[0].is_warmup
        # ...while a worker first participating now still warms with the
        # full initial W.
        late = drive(controller, trace, [30, 31, 32], worker_id=7)
        assert [d.is_warmup for d in late] == [True, True, False]


class TestStatistics:
    def test_confidence_none_without_fast_forwarding(self):
        stats = FidelityStatistics(error_budget=0.02)
        assert stats.confidence_summary(1000.0) is None

    def test_summaries_are_json_friendly(self):
        trace = uniform_trace(count=40)
        controller = FidelityController(trace, quick_config())
        drive(controller, trace, range(40), ipc=2.0)
        result_cycles = controller._total_work
        confidence = controller.stats.confidence_summary(result_cycles)
        assert confidence is not None
        json.dumps(confidence)
        assert confidence["level"] == 0.95
        assert confidence["lower_cycles"] <= result_cycles <= confidence["upper_cycles"]
        assert confidence["committed_types"] == 1
        summary = controller.stats.fidelity_summary()
        json.dumps(summary)
        assert summary["error_budget"] == controller.config.error_budget
        assert summary["num_types"] == 1
        assert summary["commits"] >= 1

    def test_statistics_shape_matches_taskpoint(self):
        # Every consumer of TaskPointStatistics must accept the subclass.
        trace = uniform_trace(count=20)
        controller = FidelityController(trace, quick_config())
        drive(controller, trace, range(20), ipc=2.0)
        stats = controller.stats
        assert stats.total_instances == 20
        assert stats.detailed_instances + stats.fast_forwarded == 20
        assert 0.0 < stats.detailed_fraction < 1.0


class TestSimulatorIntegration:
    def test_tracks_detailed_run_within_loose_bound(self):
        trace = mixed_trace(num_per_type=60)
        detailed = TaskSimSimulator().run(
            trace, num_threads=2, controller=AlwaysDetailedController()
        )
        controller = FidelityController(
            trace,
            FidelityConfig(error_budget=0.05, min_samples=4, min_residuals=4,
                           residual_window=8, probe_period=10,
                           warmup_instances=1),
        )
        sampled = TaskSimSimulator().run(trace, num_threads=2, controller=controller)
        assert controller.stats.total_instances == trace.columns.num_records
        error = abs(sampled.total_cycles - detailed.total_cycles) / detailed.total_cycles
        assert error < 0.20
        # The controller must actually have fast-forwarded something.
        assert controller.stats.fast_forwarded > 0
        assert controller.stats.detailed_fraction < 1.0


class TestExperimentWiring:
    def test_run_spec_dispatches_fidelity(self):
        spec = ExperimentSpec(
            benchmark="swaptions", num_threads=2, scale=0.02,
            config=FidelityConfig(),
        )
        result = run_spec(spec)
        assert result.taskpoint is not None
        assert "fidelity" in result.taskpoint
        fidelity = result.taskpoint["fidelity"]
        assert fidelity["error_budget"] == pytest.approx(0.02)
        assert fidelity["num_types"] >= 1
        confidence = result.taskpoint.get("confidence")
        assert confidence is None or confidence["level"] == 0.95

    def test_spec_round_trip_and_distinct_keys(self):
        fidelity = ExperimentSpec(
            benchmark="cholesky", num_threads=4, config=FidelityConfig()
        )
        stratified = ExperimentSpec(
            benchmark="cholesky", num_threads=4, config=StratifiedConfig()
        )
        assert fidelity.content_key() != stratified.content_key()
        rebuilt = ExperimentSpec.from_dict(fidelity.to_dict())
        assert rebuilt == fidelity
        assert rebuilt.content_key() == fidelity.content_key()
        assert isinstance(rebuilt.config, FidelityConfig)
        assert fidelity.label().endswith("[fidelity]")

    def test_budget_changes_content_key(self):
        base = ExperimentSpec(
            benchmark="cholesky", num_threads=4, config=FidelityConfig()
        )
        other = ExperimentSpec(
            benchmark="cholesky", num_threads=4,
            config=FidelityConfig().with_error_budget(0.05),
        )
        assert base.content_key() != other.content_key()

    def test_result_round_trip_preserves_fidelity_block(self):
        spec = ExperimentSpec(
            benchmark="swaptions", num_threads=2, scale=0.02,
            config=FidelityConfig(),
        )
        result = run_spec(spec)
        rebuilt = ExperimentResult.from_dict(result.to_dict())
        assert rebuilt.taskpoint.get("fidelity") == result.taskpoint["fidelity"]
        assert rebuilt.taskpoint.get("confidence") == result.taskpoint.get("confidence")
