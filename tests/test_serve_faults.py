"""Fault-injection tests for the simulation service daemon.

Runs ``repro serve`` as a real subprocess and breaks it the way
deployments break:

* SIGKILL mid-job, then restart on the same cache directory: the journal
  re-submits the unfinished job, every result persisted before the kill is
  a warm hit (exactly one execution ever — the write-ahead store ordering
  and the per-spec ack protocol make acknowledged results durable), no
  torn store entries exist, and the recovered store is byte-identical to
  a serial run of the same specs.
* A client that disconnects mid-``watch`` leaves the job running and can
  re-attach later for the full ``job_done`` frame.
* SIGTERM shuts the daemon down gracefully with exit code 0.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.core.config import lazy_config
from repro.exp import ExperimentSpec, ResultStore, SerialBackend, run_experiments
from repro.exp import protocol
from repro.serve import ServiceClient, store_digest

SCALE = 0.004


def small_spec(benchmark="swaptions", threads=2, seed=1):
    return ExperimentSpec(
        benchmark=benchmark, num_threads=threads, scale=SCALE,
        trace_seed=seed, config=lazy_config(),
    )


def subprocess_env(**overrides):
    env = dict(os.environ)
    package_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    if package_root not in (existing or "").split(os.pathsep):
        env["PYTHONPATH"] = package_root + (
            os.pathsep + existing if existing else ""
        )
    env.update(overrides)
    return env


class Daemon:
    """One ``repro serve`` subprocess; parses its address from stdout."""

    def __init__(self, cache_dir, *, workers=2, env=None):
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--listen", "127.0.0.1:0",
                "--workers", str(workers),
                "--cache-dir", str(cache_dir),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env or subprocess_env(),
        )
        line = self.proc.stdout.readline()
        assert "listening on" in line, f"unexpected banner: {line!r}"
        address = line.split("listening on", 1)[1].split()[0]
        host, _, port = address.partition(":")
        self.host, self.port = host, int(port)

    def client(self, timeout=120.0):
        return ServiceClient(self.host, self.port, timeout=timeout)

    def sigkill(self):
        self.proc.kill()
        self.proc.wait(timeout=30)

    def terminate(self):
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover - safety net
                self.proc.kill()
                self.proc.wait(timeout=30)
        return self.proc.returncode


def torn_files(cache_dir):
    return [
        path
        for path in pathlib.Path(cache_dir).rglob(".tmp-*")
        if path.is_file()
    ]


def wait_for(predicate, timeout=60.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition never became true")


class TestSigkillRecovery:
    def test_restart_recovers_without_rerunning_acked_work(self, tmp_path):
        cache = tmp_path / "cache"
        exec_log = tmp_path / "exec.log"
        specs = [small_spec(seed=1000 + index) for index in range(8)]
        keys = [spec.content_key() for spec in specs]
        env = subprocess_env(
            REPRO_EXP_WORKER_DELAY="0.3",
            REPRO_EXP_WORKER_EXECLOG=str(exec_log),
        )

        daemon = Daemon(cache, env=env)
        try:
            client = daemon.client()
            job_id = client.submit(specs, tenant="alice")["job"]

            # Kill only once the job is genuinely mid-flight: some units
            # acknowledged and persisted, others still pending.
            snapshot = wait_for(lambda: (
                lambda s: s if 0 < s["counts"]["done"] < len(specs) else None
            )(client.status(job_id)))
            assert snapshot["counts"]["pending"] > 0
        finally:
            daemon.sigkill()

        stored_at_kill = {
            key for key in keys
            if ResultStore(cache)._key_path(key).is_file()
        }
        assert stored_at_kill, "kill landed before any result was stored"
        assert len(stored_at_kill) < len(specs), "kill landed after the job"
        assert torn_files(cache) == []

        journal = json.loads(
            (cache / ".serve" / "jobs" / f"{job_id}.json").read_text()
        )
        assert journal["state"] == "active"

        # Restart on the same cache: the journal re-submits the job, warm
        # keys resolve instantly, only unfinished specs re-enter the queue.
        daemon = Daemon(cache, env=env)
        try:
            client = daemon.client()
            stats = client.stats()
            assert stats["recovered_jobs"] == 1
            done = client.wait(job_id)
            assert done["status"] == "done"
            assert len(done["results"]) == len(specs)
            recovered_hits = [
                entry for entry in done["results"] if entry["cached"]
            ]
            assert {e["key"] for e in recovered_hits} == stored_at_kill
        finally:
            assert daemon.terminate() == 0

        # Every result acknowledged before the kill was executed exactly
        # once, ever: durability means no acked work is re-run.  (Specs in
        # flight at the kill may legitimately show a second started-line.)
        executed = exec_log.read_text().split()
        for key in stored_at_kill:
            assert executed.count(key) == 1, key
        assert set(executed) >= set(keys) - stored_at_kill
        assert torn_files(cache) == []

        # The recovered store is byte-identical to a serial run.
        serial_dir = tmp_path / "serial"
        run_experiments(
            specs, backend=SerialBackend(), store=ResultStore(serial_dir)
        )
        assert store_digest(cache, keys=keys) == store_digest(
            serial_dir, keys=keys
        )

    def test_journal_marks_finished_jobs_terminal(self, tmp_path):
        cache = tmp_path / "cache"
        daemon = Daemon(cache)
        try:
            client = daemon.client()
            job_id = client.submit([small_spec(seed=2000)], tenant="t")["job"]
            client.wait(job_id)
        finally:
            assert daemon.terminate() == 0
        journal = json.loads(
            (cache / ".serve" / "jobs" / f"{job_id}.json").read_text()
        )
        assert journal["state"] == "done"

        # A fresh daemon does not resurrect terminal jobs.
        daemon = Daemon(cache)
        try:
            assert daemon.client().stats()["recovered_jobs"] == 0
        finally:
            assert daemon.terminate() == 0


class TestClientDisconnect:
    def test_disconnect_mid_watch_leaves_job_running(self, tmp_path):
        cache = tmp_path / "cache"
        env = subprocess_env(REPRO_EXP_WORKER_DELAY="0.2")
        daemon = Daemon(cache, env=env)
        try:
            client = daemon.client()
            specs = [small_spec(seed=3000 + index) for index in range(6)]
            job_id = client.submit(specs, tenant="alice")["job"]

            # Open a watch, read the initial snapshot, then vanish rudely.
            import socket

            sock = socket.create_connection(
                (daemon.host, daemon.port), timeout=30
            )
            stream = sock.makefile("rwb")
            protocol.write_frame(stream, {"type": "watch", "job": job_id})
            first = protocol.read_frame(stream)
            assert first["type"] == "job_status"
            sock.close()

            # The job is unaffected: still listed, still progressing, and a
            # re-attached watcher gets the full completion frame.
            snapshot = client.status(job_id)
            assert snapshot["status"] in ("active", "done")
            done = client.wait(job_id)
            assert done["status"] == "done"
            assert len(done["results"]) == len(specs)
            counts = client.status(job_id)["counts"]
            assert counts["done"] == len(specs)  # exactly once each
        finally:
            assert daemon.terminate() == 0


class TestGracefulShutdown:
    def test_sigterm_exits_zero(self, tmp_path):
        daemon = Daemon(tmp_path / "cache")
        daemon.proc.send_signal(signal.SIGTERM)
        assert daemon.proc.wait(timeout=30) == 0
        output = daemon.proc.stdout.read()
        assert "repro serve: stopped" in output

    def test_stop_frame_exits_zero(self, tmp_path):
        daemon = Daemon(tmp_path / "cache")
        reply = daemon.client().stop()
        assert reply["type"] == "stopping"
        assert daemon.proc.wait(timeout=30) == 0
