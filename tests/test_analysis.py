"""Tests for the analysis package: variation, native model, accuracy, reporting."""

import pytest

from repro.analysis.accuracy import (
    evaluate_benchmark,
    evaluate_grid,
    group_by_threads,
    summarize,
)
from repro.analysis.native import NativeExecutionModel, native_execution
from repro.analysis.reporting import (
    format_table,
    render_accuracy_table,
    render_variation_report,
)
from repro.analysis.variation import (
    BoxPlotStats,
    classification_agreement,
    ipc_variation,
    normalized_deviations,
    variation_grid,
)
from repro.core.config import lazy_config
from repro.exp import MemoryResultStore
from repro.sim.simulator import simulate
from repro.workloads.registry import get_workload

from tests.conftest import build_two_type_trace, build_uniform_trace


class TestBoxPlotStats:
    def test_from_values(self):
        values = [-10.0, -5.0, 0.0, 5.0, 10.0]
        stats = BoxPlotStats.from_values(values)
        assert stats.minimum == -10.0
        assert stats.maximum == 10.0
        assert stats.median == 0.0
        assert stats.count == 5
        assert stats.whisker_range > 0

    def test_within_5_percent(self):
        tight = BoxPlotStats.from_values([-1.0, 0.0, 1.0])
        wide = BoxPlotStats.from_values([-20.0, 0.0, 20.0])
        assert tight.within_5_percent is True
        assert wide.within_5_percent is False

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxPlotStats.from_values([])


class TestIpcVariation:
    def test_normalized_deviations_centred_on_zero(self):
        trace = build_two_type_trace(num_instances=60)
        result = simulate(trace, num_threads=2)
        deviations = normalized_deviations(result)
        assert len(deviations) == 60
        assert abs(sum(deviations) / len(deviations)) < 5.0

    def test_report_structure(self):
        trace = build_two_type_trace(num_instances=60)
        result = simulate(trace, num_threads=2)
        report = ipc_variation(result)
        assert report.benchmark == trace.name
        assert report.num_threads == 2
        assert {tv.task_type for tv in report.per_type} == {"small", "large"}
        for type_variation in report.per_type:
            assert type_variation.mean_ipc > 0
            assert type_variation.count == 30

    def test_uniform_workload_within_5_percent(self):
        trace = build_uniform_trace(num_instances=80)
        report = ipc_variation(simulate(trace, num_threads=2))
        assert report.within_5_percent

    def test_variation_grid_matches_direct_analysis(self):
        trace = get_workload("swaptions").generate(scale=0.004, seed=1)
        direct = ipc_variation(simulate(trace, num_threads=2))
        store = MemoryResultStore()
        reports = variation_grid(["swaptions"], num_threads=2, scale=0.004, seed=1,
                                 store=store)
        assert set(reports) == {"swaptions"}
        assert reports["swaptions"] == direct
        # The detailed run is cached under its spec key and reused on rerun.
        rerun = variation_grid(["swaptions"], num_threads=2, scale=0.004, seed=1,
                               store=store)
        assert rerun == reports
        assert store.hits == 1

    def test_classification_agreement(self):
        trace = build_uniform_trace(num_instances=60)
        simulated = {"bench": ipc_variation(simulate(trace, num_threads=2))}
        native = {"bench": ipc_variation(native_execution(trace, num_threads=2))}
        agreement = classification_agreement(native, simulated)
        assert 0.0 <= agreement <= 1.0
        with pytest.raises(ValueError):
            classification_agreement({}, {})


class TestNativeExecutionModel:
    def test_noise_factors_positive_and_near_one(self):
        model = NativeExecutionModel(seed=1)
        factors = [model(None) for _ in range(200)]
        assert all(factor > 0.5 for factor in factors)
        assert 0.95 < sum(factors) / len(factors) < 1.15

    def test_zero_noise_is_identity(self):
        model = NativeExecutionModel(jitter_sigma=0.0, os_noise_probability=0.0)
        assert all(model(None) == 1.0 for _ in range(10))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NativeExecutionModel(jitter_sigma=-0.1)
        with pytest.raises(ValueError):
            NativeExecutionModel(os_noise_probability=1.5)
        with pytest.raises(ValueError):
            NativeExecutionModel(os_noise_magnitude=-1)

    def test_native_execution_more_variable_than_simulation(self):
        trace = build_uniform_trace(num_instances=100)
        simulated = ipc_variation(simulate(trace, num_threads=2))
        native = ipc_variation(
            native_execution(trace, num_threads=2,
                             noise=NativeExecutionModel(jitter_sigma=0.05, seed=3))
        )
        assert native.box.whisker_range > simulated.box.whisker_range


class TestAccuracy:
    def test_evaluate_benchmark_fields(self):
        trace = get_workload("swaptions").generate(scale=0.005, seed=1)
        result = evaluate_benchmark(trace, num_threads=2, config=lazy_config())
        assert result.benchmark == "swaptions"
        assert result.error_percent >= 0.0
        assert result.speedup > 0.0
        assert 0.0 < result.detailed_fraction <= 1.0

    def test_evaluate_grid_and_summaries(self):
        results = evaluate_grid(
            benchmarks=["swaptions", "vector-operation"],
            thread_counts=[1, 2],
            scale=0.004,
            config=lazy_config(),
        )
        assert len(results) == 4
        summary = summarize(results)
        assert summary.count == 4
        assert summary.max_error_percent >= summary.average_error_percent
        by_threads = group_by_threads(results)
        assert set(by_threads) == {1, 2}
        assert all(s.count == 2 for s in by_threads.values())

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_evaluate_grid_reuses_cached_results(self):
        store = MemoryResultStore()
        results = evaluate_grid(
            benchmarks=["swaptions"], thread_counts=[2],
            scale=0.004, seed=7, config=lazy_config(), store=store,
        )
        assert results[0].benchmark == "swaptions"
        assert len(store) == 2  # one sampled run plus its detailed baseline
        rerun = evaluate_grid(
            benchmarks=["swaptions"], thread_counts=[2],
            scale=0.004, seed=7, config=lazy_config(), store=store,
        )
        assert rerun == results
        assert store.hits == 2


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.2345], ["long-name", 2]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "1.23" in lines[2]

    def test_format_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_render_accuracy_table(self):
        trace = get_workload("swaptions").generate(scale=0.004, seed=1)
        results = [evaluate_benchmark(trace, num_threads=2, config=lazy_config())]
        text = render_accuracy_table(results, title="Figure 7")
        assert "Figure 7" in text
        assert "swaptions" in text
        assert "overall" in text

    def test_render_variation_report(self):
        trace = build_uniform_trace(num_instances=60)
        reports = {"uniform": ipc_variation(simulate(trace, num_threads=2))}
        text = render_variation_report(reports, title="Figure 5")
        assert "Figure 5" in text
        assert "uniform" in text
        assert "within +/-5%" in text
