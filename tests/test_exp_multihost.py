"""Network-fault injection and equivalence tests for the multi-host transport.

Covers :mod:`repro.exp.hosts` (the :class:`HostPool` listener, launchers and
:class:`MultiHostBackend`), the compressed frame protocol and the worker's
connect-back path: byte-exact store equivalence with the serial backend, a
worker's TCP connection severed mid-spec with requeue convergence, truncated
and oversized frame handling, compressed-versus-uncompressed hello
negotiation, quarantine of a crash-looping host, connect retry with backoff,
and a randomized-kill soak (``-m soak``, excluded from tier-1).
"""

import asyncio
import io
import os
import pathlib
import random
import signal
import socket
import struct
import subprocess
import sys
import tempfile
import threading
import time
import zlib

import pytest

from repro.core.config import lazy_config, periodic_config
from repro.exp import (
    AsyncWorkerBackend,
    ExperimentSpec,
    HostSpec,
    MultiHostBackend,
    ProcessPoolBackend,
    ResultStore,
    SerialBackend,
    make_named_backend,
    parse_hosts,
    parse_listen,
    run_experiments,
    run_spec,
)
from repro.exp import protocol
from repro.exp.hosts import HostPool
from repro.exp.worker import FAULT_ENV

from exp_helpers import deterministic_fields, store_result_bytes

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional test dep
    HAVE_HYPOTHESIS = False

SCALE = 0.004


def small_spec(benchmark="swaptions", threads=2, config=lazy_config(), **kwargs):
    return ExperimentSpec(
        benchmark=benchmark, num_threads=threads, scale=SCALE, trace_seed=1,
        config=config, **kwargs,
    )


def small_grid():
    specs = []
    for benchmark in ("swaptions", "vector-operation"):
        for threads in (1, 2):
            spec = small_spec(benchmark=benchmark, threads=threads)
            specs.extend([spec, spec.baseline()])
    return specs


def local_backend(hosts="local0:1,local1:1", **kwargs):
    kwargs.setdefault("heartbeat_interval", 0.5)
    return MultiHostBackend(hosts, **kwargs)


def subprocess_env(**overrides):
    """Environment for worker subprocesses that can import repro."""
    from repro.exp.distributed import worker_environment

    return worker_environment(overrides)


def read_raw_frame(stream):
    """(compressed_bit, message) of one frame, bypassing transparent decode."""
    header = stream.read(4)
    assert len(header) == 4
    (word,) = struct.unpack(">I", header)
    compressed = bool(word & 0x80000000)
    length = word & 0x7FFFFFFF
    payload = b""
    while len(payload) < length:
        chunk = stream.read(length - len(payload))
        assert chunk, "stream closed mid-frame"
        payload += chunk
    return compressed, protocol.decode_payload(payload, compressed=compressed)


class TestProtocolCompression:
    def test_large_frame_round_trips_compressed(self):
        message = {"type": "run", "blob": "taskpoint " * 400}
        frame = protocol.encode_frame(message, compress=True)
        raw = protocol.encode_frame(message)
        assert len(frame) < len(raw)
        (word,) = struct.unpack(">I", frame[:4])
        assert word & 0x80000000
        assert protocol.read_frame(io.BytesIO(frame)) == message

    def test_small_frames_stay_raw(self):
        message = {"type": "ping", "seq": 7}
        assert protocol.encode_frame(message, compress=True) == \
            protocol.encode_frame(message)

    def test_unprofitable_compression_stays_raw(self, monkeypatch):
        # When zlib cannot shrink the payload the encoder must fall back to
        # the raw form rather than ship an inflated frame.
        monkeypatch.setattr(
            protocol.zlib, "compress", lambda data, level=6: data + b"\0" * 16
        )
        message = {"b": "taskpoint " * 200}
        frame = protocol.encode_frame(message, compress=True)
        (word,) = struct.unpack(">I", frame[:4])
        assert not word & 0x80000000
        assert protocol.read_frame(io.BytesIO(frame)) == message

    def test_truncated_frame_raises(self):
        frame = protocol.encode_frame({"type": "hello"})
        with pytest.raises(protocol.ProtocolError):
            protocol.read_frame(io.BytesIO(frame[:-3]))
        with pytest.raises(protocol.ProtocolError):
            protocol.read_frame(io.BytesIO(frame[:2]))

    def test_oversized_header_raises(self):
        header = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(protocol.ProtocolError):
            protocol.read_frame(io.BytesIO(header))
        # The compressed bit does not smuggle an oversized length through.
        header = struct.pack(
            ">I", (protocol.MAX_FRAME_BYTES + 1) | 0x80000000
        )
        with pytest.raises(protocol.ProtocolError):
            protocol.read_frame(io.BytesIO(header))

    def test_corrupt_compressed_payload_raises(self):
        payload = b"this is not zlib data"
        frame = struct.pack(">I", len(payload) | 0x80000000) + payload
        with pytest.raises(protocol.ProtocolError):
            protocol.read_frame(io.BytesIO(frame))

    def test_decompression_bomb_rejected(self):
        # A tiny compressed payload announcing itself honestly but inflating
        # past MAX_FRAME_BYTES must be refused, not materialised.
        bomb = zlib.compress(b"x" * (protocol.MAX_FRAME_BYTES + 1), 9)
        assert len(bomb) < protocol.MAX_FRAME_BYTES
        frame = struct.pack(">I", len(bomb) | 0x80000000) + bomb
        with pytest.raises(protocol.ProtocolError):
            protocol.read_frame(io.BytesIO(frame))


class TestHostParsing:
    def test_parse_hosts(self):
        specs = parse_hosts("alpha:4, beta:8,local0")
        assert [(s.name, s.workers) for s in specs] == [
            ("alpha", 4), ("beta", 8), ("local0", 1)
        ]
        assert not specs[0].is_local and specs[2].is_local

    def test_parse_hosts_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_hosts("")
        with pytest.raises(ValueError):
            parse_hosts("host:zero")
        with pytest.raises(ValueError):
            parse_hosts("host:0")
        with pytest.raises(ValueError):
            parse_hosts(":4")

    def test_parse_listen(self):
        assert parse_listen(None) == ("127.0.0.1", 0)
        assert parse_listen("9000") == ("127.0.0.1", 9000)
        assert parse_listen("0.0.0.0:9000") == ("0.0.0.0", 9000)

    def test_make_named_backend_multihost(self):
        backend = make_named_backend("multihost", hosts="local0:1,local1:2")
        assert isinstance(backend, MultiHostBackend)
        assert backend.num_workers == 3
        # --hosts implies multihost under the default backend name.
        assert isinstance(
            make_named_backend("auto", hosts="local0:1"), MultiHostBackend
        )
        with pytest.raises(ValueError):
            make_named_backend("multihost")
        # A host list with an explicitly single-host backend is a conflict,
        # not something to ignore silently (REPRO_BENCH_BACKEND=async +
        # REPRO_BENCH_HOSTS=... must not quietly run single-host).
        with pytest.raises(ValueError):
            make_named_backend("async", hosts="local0:1")
        with pytest.raises(ValueError):
            make_named_backend("serial", listen="9000")


class TestHostPool:
    """The listener only hands out connections with a valid hello + token."""

    def run_pool(self, exercise):
        async def main():
            pool = HostPool("127.0.0.1", 0)
            await pool.start()
            try:
                return await exercise(pool)
            finally:
                await pool.close()

        return asyncio.run(main())

    def test_valid_token_is_matched(self):
        async def exercise(pool):
            future = pool.expect("tok-1")
            reader, writer = await asyncio.open_connection("127.0.0.1", pool.port)
            writer.write(protocol.encode_frame(
                {"type": "hello", "pid": 4242, "token": "tok-1",
                 "protocol": protocol.PROTOCOL_VERSION, "compress": True}
            ))
            await writer.drain()
            _, server_writer, hello = await asyncio.wait_for(future, 10.0)
            assert hello["pid"] == 4242
            server_writer.close()
            writer.close()
            return pool.rejected

        assert self.run_pool(exercise) == 0

    def test_unknown_token_is_dropped(self):
        async def exercise(pool):
            reader, writer = await asyncio.open_connection("127.0.0.1", pool.port)
            writer.write(protocol.encode_frame(
                {"type": "hello", "pid": 1, "token": "nobody-expects-me"}
            ))
            await writer.drain()
            assert await asyncio.wait_for(reader.read(), 10.0) == b""  # closed
            writer.close()
            return pool.rejected

        assert self.run_pool(exercise) == 1

    def test_oversized_frame_header_is_dropped(self):
        async def exercise(pool):
            future = pool.expect("tok-1")
            reader, writer = await asyncio.open_connection("127.0.0.1", pool.port)
            writer.write(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
            writer.write(b"garbage")
            await writer.drain()
            assert await asyncio.wait_for(reader.read(), 10.0) == b""  # closed
            writer.close()
            assert not future.done()
            return pool.rejected

        assert self.run_pool(exercise) == 1

    def test_wrong_frame_type_does_not_consume_the_future(self):
        # A malformed frame carrying a real token must not eat the launch's
        # future: the genuine worker connecting later still claims it.
        async def exercise(pool):
            future = pool.expect("tok-1")
            reader, writer = await asyncio.open_connection("127.0.0.1", pool.port)
            writer.write(protocol.encode_frame({"type": "ping", "token": "tok-1"}))
            await writer.drain()
            assert await asyncio.wait_for(reader.read(), 10.0) == b""  # closed
            writer.close()
            assert not future.done()
            reader2, writer2 = await asyncio.open_connection(
                "127.0.0.1", pool.port
            )
            writer2.write(protocol.encode_frame(
                {"type": "hello", "pid": 7, "token": "tok-1"}
            ))
            await writer2.drain()
            _, server_writer, hello = await asyncio.wait_for(future, 10.0)
            assert hello["pid"] == 7
            server_writer.close()
            writer2.close()
            return pool.rejected

        assert self.run_pool(exercise) == 1

    def test_truncated_hello_is_dropped(self):
        async def exercise(pool):
            future = pool.expect("tok-1")
            reader, writer = await asyncio.open_connection("127.0.0.1", pool.port)
            frame = protocol.encode_frame({"type": "hello", "token": "tok-1"})
            writer.write(frame[:-4])  # header promises more than is sent
            await writer.drain()
            writer.close()  # sever mid-frame
            deadline = asyncio.get_running_loop().time() + 10.0
            while pool.rejected == 0:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.01)
            assert not future.done()
            return pool.rejected

        assert self.run_pool(exercise) == 1


class TestWorkerNegotiation:
    """Worker-side hello/hello_ack handshake over a real TCP connection."""

    def handshake(self, ack_compress):
        spec = small_spec()
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as server:
            server.bind(("127.0.0.1", 0))
            server.listen(1)
            port = server.getsockname()[1]
            worker = subprocess.Popen(
                [sys.executable, "-m", "repro.exp.worker",
                 "--connect", "127.0.0.1", str(port),
                 "--token", "negotiate-1"],
                env=subprocess_env(),
            )
            try:
                server.settimeout(30.0)
                connection, _ = server.accept()
                with connection, \
                        connection.makefile("rb") as reader, \
                        connection.makefile("wb") as writer:
                    compressed, hello = read_raw_frame(reader)
                    assert not compressed  # hello precedes any negotiation
                    assert hello["type"] == "hello"
                    assert hello["token"] == "negotiate-1"
                    assert hello["compress"] is True
                    assert hello["protocol"] == protocol.PROTOCOL_VERSION
                    if ack_compress is not None:
                        protocol.write_frame(
                            writer,
                            {"type": "hello_ack", "compress": ack_compress},
                        )
                    protocol.write_frame(
                        writer,
                        {"type": "run", "job": 3, "spec": spec.to_dict()},
                        compress=bool(ack_compress),
                    )
                    compressed, message = read_raw_frame(reader)
                    assert message["type"] == "result"
                    assert message["job"] == 3
                    local = deterministic_fields(run_spec(spec))
                    remote = dict(message["result"])
                    remote.pop("wall_seconds")
                    assert remote == local
                    protocol.write_frame(writer, {"type": "shutdown"})
                    result_compressed = compressed
                assert worker.wait(timeout=30) == 0
                return result_compressed
            finally:
                if worker.poll() is None:
                    worker.kill()
                    worker.wait()

    def test_ack_enables_compressed_results(self):
        assert self.handshake(ack_compress=True) is True

    def test_ack_can_decline_compression(self):
        assert self.handshake(ack_compress=False) is False

    def test_no_ack_means_uncompressed(self):
        # A supervisor that never acks (the stdio path) gets raw frames.
        assert self.handshake(ack_compress=None) is False


class TestConnectRetry:
    """`--connect` survives a supervisor whose listener is not up yet."""

    def test_worker_retries_until_listener_appears(self):
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        # The port is now free (and refused): start the worker first.
        worker = subprocess.Popen(
            [sys.executable, "-m", "repro.exp.worker",
             "--connect", "127.0.0.1", str(port),
             "--connect-backoff", "0.1"],
            env=subprocess_env(),
        )
        try:
            time.sleep(1.0)  # several connect attempts fail meanwhile
            assert worker.poll() is None, "worker gave up while retrying"
            with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as server:
                server.bind(("127.0.0.1", port))
                server.listen(1)
                server.settimeout(30.0)
                connection, _ = server.accept()
                with connection, \
                        connection.makefile("rb") as reader, \
                        connection.makefile("wb") as writer:
                    hello = protocol.read_frame(reader)
                    assert hello["type"] == "hello"
                    protocol.write_frame(writer, {"type": "shutdown"})
            assert worker.wait(timeout=30) == 0
        finally:
            if worker.poll() is None:
                worker.kill()
                worker.wait()

    def test_zero_retries_fails_fast(self):
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        worker = subprocess.run(
            [sys.executable, "-m", "repro.exp.worker",
             "--connect", "127.0.0.1", str(port),
             "--connect-retries", "0"],
            env=subprocess_env(), capture_output=True, text=True, timeout=60,
        )
        assert worker.returncode == 1
        assert "cannot reach supervisor" in worker.stderr


class TestMultiHostEquivalence:
    def test_matches_serial_results(self):
        specs = small_grid()
        serial = run_experiments(specs, backend=SerialBackend())
        multihost = run_experiments(specs, backend=local_backend())
        assert len(serial) == len(multihost) == len(specs)
        for left, right in zip(serial, multihost):
            assert deterministic_fields(left) == deterministic_fields(right)

    def test_store_byte_identical_to_serial(self, tmp_path):
        # Acceptance criterion: the multi-host path writes the same bytes.
        specs = small_grid()
        run_experiments(specs, backend=SerialBackend(),
                        store=ResultStore(tmp_path / "serial"))
        run_experiments(specs, backend=local_backend(),
                        store=ResultStore(tmp_path / "multihost"))
        serial_bytes = store_result_bytes(tmp_path / "serial")
        multihost_bytes = store_result_bytes(tmp_path / "multihost")
        assert serial_bytes  # the comparison is not vacuous
        assert serial_bytes == multihost_bytes

    def test_compression_does_not_change_store_bytes(self, tmp_path):
        specs = small_grid()
        run_experiments(specs, backend=local_backend(compress=True),
                        store=ResultStore(tmp_path / "compressed"))
        run_experiments(specs, backend=local_backend(compress=False),
                        store=ResultStore(tmp_path / "raw"))
        compressed = store_result_bytes(tmp_path / "compressed")
        assert compressed
        assert compressed == store_result_bytes(tmp_path / "raw")

    def test_work_is_spread_across_hosts(self):
        backend = local_backend("local0:1,local1:1")
        backend.run(small_grid())
        completed = {name: stats["completed"]
                     for name, stats in backend.host_stats.items()}
        assert sum(completed.values()) == len({
            spec.content_key() for spec in small_grid()
        })
        assert all(stats["spawns"] >= 1 for stats in backend.host_stats.values())

    def test_no_workers_or_handles_outlive_the_run(self):
        backend = local_backend()
        backend.run([small_spec()])
        assert backend.active_pids() == []
        assert all(handle.returncode is not None for handle in backend._handles) \
            or backend._handles == []


class TestCliMultiHost:
    # Lives here (not tests/test_cli.py) so the subprocess-spawning CLI path
    # runs inside CI's hard-timeout multi-host step, not the tier-1 step.
    def test_compare_with_hosts_flag(self, capsys):
        from repro.cli import main

        code = main([
            "compare", "swaptions", "--scale", "0.004", "--threads", "2",
            "--policy", "lazy", "--hosts", "local0:1,local1:1",
        ])
        assert code == 0
        assert "execution-time error" in capsys.readouterr().out

    def test_hosts_flag_conflicts_with_other_backends(self, capsys):
        from repro.cli import main

        code = main([
            "compare", "swaptions", "--scale", "0.004", "--threads", "2",
            "--backend", "pool", "--hosts", "local0:1",
        ])
        assert code == 2
        assert "--hosts requires" in capsys.readouterr().err

    def test_listen_without_hosts_is_rejected(self, capsys):
        from repro.cli import main

        code = main([
            "compare", "swaptions", "--scale", "0.004", "--threads", "2",
            "--listen", "9000",
        ])
        assert code == 2
        assert "--listen" in capsys.readouterr().err


class TestNetworkFaults:
    def test_severed_connection_mid_spec_requeues_and_converges(self, tmp_path):
        # The fault hook SIGKILLs exactly one worker upon receiving the
        # target spec: its TCP connection to the supervisor is severed with
        # the spec in flight.  The supervisor must requeue the spec onto a
        # fresh worker and still produce a store byte-identical to serial.
        specs = small_grid()
        target_key = specs[0].content_key()
        flag = tmp_path / "died-once"
        backend = local_backend(
            worker_env={FAULT_ENV: f"{target_key[:16]}:{flag}"},
        )
        run_experiments(specs, backend=backend,
                        store=ResultStore(tmp_path / "multihost"))
        assert flag.exists(), "the fault hook never fired"
        assert backend.stats.get("worker_deaths", 0) >= 1
        assert backend.stats.get("requeues", 0) >= 1
        run_experiments(specs, backend=SerialBackend(),
                        store=ResultStore(tmp_path / "serial"))
        assert (store_result_bytes(tmp_path / "multihost")
                == store_result_bytes(tmp_path / "serial"))

    def test_quarantined_host_does_not_stall_the_batch(self, tmp_path):
        # Every worker of the bad host dies on every spec (the die-always
        # fault hook): the host crash-loops, is quarantined, and the healthy
        # host drains the whole queue with results identical to serial.
        flag = tmp_path / "crash-loop"
        bad = HostSpec("local-bad", workers=1,
                       env={FAULT_ENV: f":{flag}:always"})
        good = HostSpec("local-good", workers=1)
        specs = small_grid()
        backend = MultiHostBackend(
            [bad, good],
            heartbeat_interval=0.5,
            max_retries=100,
            host_quarantine_retries=1,
            spawn_retries=100,
        )
        results = backend.run(specs)
        assert flag.exists(), "the crash-loop hook never fired"
        reference = SerialBackend().run(specs)
        for left, right in zip(reference, results):
            assert deterministic_fields(left) == deterministic_fields(right)
        assert backend.stats.get("hosts_quarantined", 0) == 1
        assert backend.host_stats["local-bad"]["quarantined"] is True
        assert backend.host_stats["local-bad"]["completed"] == 0
        assert backend.host_stats["local-good"]["quarantined"] is False
        assert backend.host_stats["local-good"]["completed"] == len({
            spec.content_key() for spec in specs
        })

    def test_all_hosts_quarantined_fails_remaining_specs(self, tmp_path):
        flag_a = tmp_path / "crash-a"
        flag_b = tmp_path / "crash-b"
        hosts = [
            HostSpec("local-a", workers=1,
                     env={FAULT_ENV: f":{flag_a}:always"}),
            HostSpec("local-b", workers=1,
                     env={FAULT_ENV: f":{flag_b}:always"}),
        ]
        backend = MultiHostBackend(
            hosts,
            heartbeat_interval=0.5,
            max_retries=1000,
            host_quarantine_retries=0,
            spawn_retries=1000,
        )
        outcomes = backend.run_outcomes([small_spec(), small_spec().baseline()])
        assert backend.stats.get("hosts_quarantined", 0) == 2
        from repro.exp import ExperimentFailure

        assert all(isinstance(outcome, ExperimentFailure)
                   for outcome in outcomes)


if HAVE_HYPOTHESIS:

    GRID_POINTS = st.tuples(
        st.sampled_from(("swaptions", "vector-operation", "histogram")),
        st.integers(min_value=1, max_value=2),
        st.sampled_from((0, 1, 2)),  # index into CONFIG_CHOICES
    )
    CONFIG_CHOICES = (None, lazy_config(), periodic_config())

    class TestPropertyEquivalence:
        @settings(
            max_examples=3, deadline=None, derandomize=True,
            suppress_health_check=[HealthCheck.too_slow],
        )
        @given(grid=st.lists(GRID_POINTS, min_size=1, max_size=2, unique=True))
        def test_random_grids_equivalent_across_all_four_backends(self, grid):
            specs = []
            for benchmark, threads, config_index in grid:
                spec = ExperimentSpec(
                    benchmark, num_threads=threads, scale=SCALE,
                    config=CONFIG_CHOICES[config_index],
                )
                specs.append(spec)
                specs.append(spec.baseline())
            backends = (
                SerialBackend(),
                ProcessPoolBackend(max_workers=2),
                AsyncWorkerBackend(num_workers=2, heartbeat_interval=0.5),
                local_backend(),
            )
            snapshots = []
            for backend in backends:
                with tempfile.TemporaryDirectory() as directory:
                    run_experiments(specs, backend=backend,
                                    store=ResultStore(directory))
                    snapshots.append(store_result_bytes(directory))
            assert snapshots[0]  # non-vacuous
            assert all(snapshot == snapshots[0] for snapshot in snapshots[1:])


@pytest.mark.soak
class TestSoak:
    """200-spec grid under randomized worker kills (run with ``-m soak``)."""

    @staticmethod
    def _soak_specs():
        benchmarks = ("swaptions", "vector-operation", "histogram",
                      "blackscholes", "reduction")
        specs = []
        for benchmark in benchmarks:
            for threads in (1, 2):
                for seed in range(1, 11):
                    spec = ExperimentSpec(
                        benchmark, num_threads=threads, scale=0.002,
                        trace_seed=seed, config=lazy_config(),
                    )
                    specs.extend([spec, spec.baseline()])
        assert len({spec.content_key() for spec in specs}) == 200
        return specs

    def _run_soak(self, tmp_path, **backend_kwargs):
        rng = random.Random(1234)
        specs = self._soak_specs()
        store_dir = tmp_path / "multihost"
        backend = MultiHostBackend(
            "local0:2,local1:2",
            heartbeat_interval=0.5,
            max_retries=10_000,
            spawn_retries=10_000,
            host_quarantine_retries=10_000,
            store=ResultStore(store_dir),
            **backend_kwargs,
        )
        stop = threading.Event()
        kills = []

        def killer():
            while not stop.is_set():
                pids = backend.active_pids()
                if pids:
                    pid = rng.choice(pids)
                    try:
                        os.kill(pid, signal.SIGKILL)
                        kills.append(pid)
                    except (OSError, ProcessLookupError):
                        pass
                stop.wait(rng.uniform(0.2, 0.5))

        thread = threading.Thread(target=killer, daemon=True)
        thread.start()
        try:
            results = run_experiments(specs, backend=backend,
                                      store=ResultStore(store_dir))
        finally:
            stop.set()
            thread.join(timeout=10.0)
        assert all(result is not None for result in results)
        assert kills, "the killer thread never fired"
        assert backend.stats.get("worker_deaths", 0) >= 1

        # Zero torn entries: no temp files, every entry parses, and the
        # store is byte-identical to a serial run (*.error.json excluded
        # from byte comparison, per store convention).
        assert list(pathlib.Path(store_dir).rglob(".tmp-*")) == []
        run_experiments(specs, backend=SerialBackend(),
                        store=ResultStore(tmp_path / "serial"))
        multihost_bytes = store_result_bytes(store_dir)
        assert len(multihost_bytes) == 200
        assert multihost_bytes == store_result_bytes(tmp_path / "serial")
        return specs, backend

    def test_randomized_kills_converge_with_clean_store(self, tmp_path):
        self._run_soak(tmp_path)

    def test_randomized_kills_batched_no_duplicate_executions(self, tmp_path):
        # Same soak in batched mode, plus the per-spec execution-count
        # probe: with batches in flight, an acknowledged spec must never be
        # executed again.  Re-executions are legitimate only for specs that
        # were in a dead worker's hands — each of those is a recorded
        # requeue — so any execution beyond unique+requeues is a duplicate.
        from repro.exp.worker import EXEC_LOG_ENV

        log = tmp_path / "execlog"
        specs, backend = self._run_soak(
            tmp_path, batch=8, worker_env={EXEC_LOG_ENV: str(log)},
        )
        assert backend.stats.get("batch_frames", 0) >= 1
        counts = {}
        for line in log.read_text(encoding="utf-8").splitlines():
            if line:
                counts[line] = counts.get(line, 0) + 1
        unique_keys = {spec.content_key() for spec in specs}
        assert set(counts) == unique_keys  # every spec ran at least once
        extra = sum(count - 1 for count in counts.values())
        assert extra <= backend.stats.get("requeues", 0), (
            f"{extra} re-executions exceed the "
            f"{backend.stats.get('requeues', 0)} recorded requeues: "
            "an acknowledged spec was executed twice"
        )
