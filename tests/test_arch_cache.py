"""Unit tests for the set-associative cache model."""

from repro.arch.cache import Cache
from repro.arch.config import CacheConfig


def make_cache(size=4 * 1024, ways=4, line=64):
    return Cache(CacheConfig(size_bytes=size, associativity=ways, latency_cycles=2,
                             line_bytes=line), name="L1")


class TestBasicBehaviour:
    def test_first_access_misses_second_hits(self):
        cache = make_cache()
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_line_different_offsets_hit(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.access(0x103F) is True

    def test_different_lines_miss(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.access(0x1040) is False

    def test_probe_does_not_change_state(self):
        cache = make_cache()
        assert cache.probe(0x2000) is False
        cache.access(0x2000)
        hits_before = cache.stats.hits
        assert cache.probe(0x2000) is True
        assert cache.stats.hits == hits_before

    def test_line_address(self):
        cache = make_cache()
        assert cache.line_address(0x1035) == 0x1000


class TestReplacement:
    def test_lru_eviction(self):
        cache = make_cache(size=4 * 64, ways=4, line=64)  # one set, 4 ways
        lines = [i * 64 for i in range(4)]
        for address in lines:
            cache.access(address)
        # Touch line 0 so line 1 becomes LRU, then insert a new line.
        cache.access(lines[0])
        cache.access(5 * 64)
        assert cache.probe(lines[0]) is True
        assert cache.probe(lines[1]) is False
        assert cache.stats.evictions == 1

    def test_dirty_eviction_counts_writeback(self):
        cache = make_cache(size=2 * 64, ways=2, line=64)
        cache.access(0, is_write=True)
        cache.access(64)
        cache.access(128)  # evicts dirty line 0
        assert cache.stats.writebacks == 1

    def test_capacity_never_exceeded(self):
        cache = make_cache(size=1024, ways=4)
        for i in range(1000):
            cache.access(i * 64)
        assert cache.occupancy() <= 1.0


class TestInvalidation:
    def test_invalidate_present_line(self):
        cache = make_cache()
        cache.access(0x4000)
        assert cache.invalidate(0x4000) is True
        assert cache.probe(0x4000) is False
        assert cache.stats.invalidations == 1

    def test_invalidate_absent_line(self):
        cache = make_cache()
        assert cache.invalidate(0x4000) is False
        assert cache.stats.invalidations == 0

    def test_invalidate_dirty_line_writes_back(self):
        cache = make_cache()
        cache.access(0x4000, is_write=True)
        cache.invalidate(0x4000)
        assert cache.stats.writebacks == 1

    def test_flush_clears_contents_keeps_stats(self):
        cache = make_cache()
        cache.access(0x100)
        cache.flush()
        assert cache.probe(0x100) is False
        assert cache.stats.misses == 1


class TestStatistics:
    def test_hit_and_miss_rate(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        cache.access(0)
        assert cache.stats.hit_rate == 2 / 3
        assert cache.stats.miss_rate == 1 / 3

    def test_rates_zero_when_idle(self):
        cache = make_cache()
        assert cache.stats.hit_rate == 0.0
        assert cache.stats.miss_rate == 0.0

    def test_reset_statistics(self):
        cache = make_cache()
        cache.access(0)
        cache.reset_statistics()
        assert cache.stats.accesses == 0
        assert cache.probe(0) is True

    def test_snapshot_keys(self):
        cache = make_cache()
        cache.access(0)
        snapshot = cache.snapshot()
        assert snapshot["name"] == "L1"
        assert snapshot["misses"] == 1
        assert 0.0 <= snapshot["occupancy"] <= 1.0
