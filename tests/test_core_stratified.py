"""Tests for the two-phase stratified sampling engine.

Covers phase 1 (signature extraction and stratification), phase 2 (pilot,
Neyman allocation, fast-forward, confidence intervals), the resampling
triggers — parametrised against the other sampling modes, so every
controller resets its state coherently — and the spec/serialisation wiring.
"""

import math

import numpy as np
import pytest

from repro.core.config import TaskPointConfig, lazy_config, periodic_config
from repro.core.controller import ResampleReason, SamplingPhase, TaskPointController
from repro.core.stratified import (
    StratifiedConfig,
    StratifiedController,
    StratifiedStatistics,
    StratumState,
    build_strata,
)
from repro.exp.runner import run_spec
from repro.exp.spec import ExperimentResult, ExperimentSpec
from repro.runtime.task import TaskInstance, TaskType
from repro.sim.modes import AlwaysDetailedController, CompletionInfo, SimulationMode
from repro.sim.simulator import TaskSimSimulator
from repro.trace.records import make_record
from repro.trace.trace import ApplicationTrace


def make_trace(num_per_type=40, types=("alpha", "beta")):
    """A synthetic trace with deliberately heterogeneous instance sizes."""
    records = []
    instance_id = 0
    for type_index, task_type in enumerate(types):
        for i in range(num_per_type):
            records.append(
                make_record(
                    instance_id,
                    task_type,
                    instructions=500 + 400 * type_index + 37 * (i % 7),
                    blocks_hint=1 + (i % 3),
                )
            )
            instance_id += 1
    return ApplicationTrace(name="synthetic", records=records)


def make_instance(trace, instance_id, task_type=None):
    """A TaskInstance consistent with ``trace``'s columns (or a foreign one)."""
    columns = trace.columns
    if task_type is None and 0 <= instance_id < columns.num_records:
        type_id = int(columns.task_type_id[instance_id])
        name = columns.types.names[type_id]
        record = make_record(
            instance_id, name, int(columns.instructions[instance_id])
        )
        return TaskInstance(record=record, task_type=TaskType(name=name, type_id=type_id))
    name = task_type or "unseen-type"
    record = make_record(instance_id, name, 1000)
    return TaskInstance(record=record, task_type=TaskType(name=name, type_id=999))


def complete(controller, instance, decision, ipc=2.0, worker_id=0, active=1):
    controller.notify_completion(
        CompletionInfo(
            instance=instance,
            mode=decision.mode,
            cycles=instance.instructions / ipc,
            ipc=ipc if decision.mode is SimulationMode.DETAILED else decision.ipc,
            is_warmup=decision.is_warmup,
            start_cycle=0.0,
            end_cycle=instance.instructions / ipc,
            worker_id=worker_id,
            active_workers=active,
        )
    )


class TestStratifiedConfig:
    def test_defaults(self):
        config = StratifiedConfig()
        assert 0.0 < config.budget <= 1.0
        assert config.strata_per_type >= 1
        assert config.pilot_samples >= 2
        assert config.resample_on_new_task_type
        assert config.resample_on_thread_change

    def test_with_budget(self):
        config = StratifiedConfig()
        assert config.with_budget(0.5).budget == 0.5
        assert config.budget != 0.5  # frozen original unchanged

    def test_validation(self):
        with pytest.raises(ValueError):
            StratifiedConfig(budget=0.0)
        with pytest.raises(ValueError):
            StratifiedConfig(budget=1.5)
        with pytest.raises(ValueError):
            StratifiedConfig(strata_per_type=0)
        with pytest.raises(ValueError):
            StratifiedConfig(min_stratum_size=0)
        with pytest.raises(ValueError):
            StratifiedConfig(pilot_samples=1)
        with pytest.raises(ValueError):
            StratifiedConfig(warmup_instances=-1)
        with pytest.raises(ValueError):
            StratifiedConfig(thread_change_persistence=0)


class TestSignatures:
    def test_shape_and_memoisation(self):
        trace = make_trace()
        columns = trace.columns
        signatures = columns.instance_signatures()
        assert signatures.shape == (columns.num_records, len(columns.SIGNATURE_FIELDS))
        assert signatures.dtype == np.float64
        # Memoised in the plan cache: the same array object comes back.
        assert columns.instance_signatures() is signatures

    def test_instruction_column_matches_trace(self):
        trace = make_trace()
        signatures = trace.columns.instance_signatures()
        np.testing.assert_array_equal(
            signatures[:, 0], trace.columns.instructions.astype(np.float64)
        )

    def test_fan_in_counts_dependencies(self):
        records = [
            make_record(0, "t", 100),
            make_record(1, "t", 100),
            make_record(2, "t", 100, depends_on=(0, 1)),
            make_record(3, "t", 100, depends_on=(2,)),
        ]
        trace = ApplicationTrace(name="deps", records=records)
        signatures = trace.columns.instance_signatures()
        # fan_in = how many records this one feeds; fan_out = dependency count.
        np.testing.assert_array_equal(signatures[:, 4], [1.0, 1.0, 1.0, 0.0])
        np.testing.assert_array_equal(signatures[:, 5], [0.0, 0.0, 2.0, 1.0])


class TestBuildStrata:
    def test_strata_never_span_types(self):
        trace = make_trace()
        columns = trace.columns
        stratum_of = build_strata(columns, strata_per_type=3, min_stratum_size=4)
        for stratum_id in np.unique(stratum_of):
            members = np.nonzero(stratum_of == stratum_id)[0]
            assert len(set(columns.task_type_id[members].tolist())) == 1

    def test_equal_frequency_bins(self):
        trace = make_trace(num_per_type=30, types=("only",))
        stratum_of = build_strata(trace.columns, strata_per_type=3, min_stratum_size=4)
        sizes = np.bincount(stratum_of)
        assert len(sizes) == 3
        assert sizes.max() - sizes.min() <= 1

    def test_small_types_get_fewer_strata(self):
        trace = make_trace(num_per_type=5, types=("tiny",))
        stratum_of = build_strata(trace.columns, strata_per_type=4, min_stratum_size=8)
        assert np.unique(stratum_of).size == 1

    def test_deterministic(self):
        trace = make_trace()
        first = build_strata(trace.columns, strata_per_type=3, min_stratum_size=4)
        second = build_strata(trace.columns, strata_per_type=3, min_stratum_size=4)
        np.testing.assert_array_equal(first, second)


class TestStratumState:
    def test_harmonic_mean_fast_forward(self):
        stratum = StratumState(0, "t", size=10, pilot_target=2)
        stratum.observe(1.0)
        stratum.observe(3.0)
        # Arithmetic mean of CPI (1.0, 1/3) is 2/3 -> harmonic-mean IPC 1.5.
        assert stratum.fast_forward_ipc() == pytest.approx(1.5)

    def test_std_is_unbiased(self):
        stratum = StratumState(0, "t", size=10, pilot_target=2)
        for ipc in (1.0, 2.0, 4.0):
            stratum.observe(ipc)
        cpis = [1.0, 0.5, 0.25]
        mean = sum(cpis) / 3
        expected = math.sqrt(sum((c - mean) ** 2 for c in cpis) / 2)  # ddof=1
        assert stratum.std() == pytest.approx(expected)

    def test_below_two_samples(self):
        stratum = StratumState(0, "t", size=10, pilot_target=2)
        assert stratum.fast_forward_ipc() is None
        assert stratum.std() == 0.0
        assert stratum.relative_standard_error() is None
        stratum.observe(2.0)
        assert stratum.fast_forward_ipc() == pytest.approx(2.0)
        assert stratum.relative_standard_error() is None

    def test_reset_keeps_identity_and_ff_cycles(self):
        stratum = StratumState(3, "t", size=10, pilot_target=2)
        stratum.observe(2.0)
        stratum.observe(4.0)
        stratum.target = 7
        stratum.decided_detailed = 5
        stratum.ff_cycles = 123.0
        stratum.reset_samples()
        assert stratum.count == 0
        assert stratum.target == stratum.pilot_target
        assert stratum.decided_detailed == 0
        assert stratum.ff_cycles == 123.0  # already-simulated cycles are real


class TestConfidenceSummary:
    def test_none_without_fast_forward(self):
        stats = StratifiedStatistics()
        assert stats.confidence_summary(1000.0) is None

    def test_halfwidth_scales_with_ff_cycles(self):
        def summary(ff_cycles):
            stratum = StratumState(0, "t", size=100, pilot_target=3)
            for ipc in (1.8, 2.0, 2.2):
                stratum.observe(ipc)
            stratum.ff_cycles = ff_cycles
            stats = StratifiedStatistics(num_strata=1, strata=[stratum])
            return stats.confidence_summary(10_000.0)

        narrow = summary(1_000.0)
        wide = summary(4_000.0)
        assert wide["half_width_cycles"] == pytest.approx(
            4 * narrow["half_width_cycles"]
        )
        assert narrow["level"] == 0.95
        assert narrow["lower_cycles"] < 10_000.0 < narrow["upper_cycles"]

    def test_unsampled_stratum_falls_back_conservatively(self):
        sampled = StratumState(0, "t", size=100, pilot_target=3)
        for ipc in (1.0, 2.0, 4.0):
            sampled.observe(ipc)
        sampled.ff_cycles = 1_000.0
        bare = StratumState(1, "t", size=100, pilot_target=3)
        bare.ff_cycles = 1_000.0  # fast-forwarded without its own samples
        with_bare = StratifiedStatistics(num_strata=2, strata=[sampled, bare])
        without = StratifiedStatistics(num_strata=1, strata=[sampled])
        assert (
            with_bare.confidence_summary(10_000.0)["half_width_cycles"]
            > without.confidence_summary(10_000.0)["half_width_cycles"]
        )


class TestControllerEndToEnd:
    def test_tracks_detailed_within_bounds(self):
        trace = make_trace(num_per_type=60)
        simulator = TaskSimSimulator()
        detailed = simulator.run(trace, num_threads=2,
                                 controller=AlwaysDetailedController())
        controller = StratifiedController(trace)
        sampled = simulator.run(trace, num_threads=2, controller=controller)
        error = abs(sampled.total_cycles - detailed.total_cycles) / detailed.total_cycles
        assert error < 0.10
        stats = controller.stats
        assert stats.fast_forwarded > 0
        assert stats.detailed_instances < trace.columns.num_records
        assert stats.allocations >= 1
        confidence = stats.confidence_summary(sampled.total_cycles)
        assert confidence is not None
        # The deterministic cost model can make within-stratum CPI exactly
        # constant, so the half-width may be zero but never negative.
        assert confidence["half_width_cycles"] >= 0
        assert confidence["lower_cycles"] <= sampled.total_cycles
        assert sampled.total_cycles <= confidence["upper_cycles"]

    def test_accounting_is_consistent(self):
        trace = make_trace(num_per_type=60)
        controller = StratifiedController(trace)
        TaskSimSimulator().run(trace, num_threads=2, controller=controller)
        stats = controller.stats
        # Every instance got exactly one decision and one completion.
        assert stats.total_instances == trace.columns.num_records
        assert stats.fast_forwarded == sum(s.fast_forwarded for s in stats.strata)
        assert stats.valid_samples == sum(s.count for s in stats.strata)

    def test_full_budget_is_detailed_everywhere(self):
        trace = make_trace(num_per_type=20)
        # warmup_instances=0 so the whole budget lands on stratum targets.
        controller = StratifiedController(
            trace, StratifiedConfig(budget=1.0, warmup_instances=0)
        )
        result = TaskSimSimulator().run(trace, num_threads=2, controller=controller)
        assert controller.stats.fast_forwarded == 0
        # Nothing estimated: no confidence interval to report.
        assert controller.stats.confidence_summary(result.total_cycles) is None


class TestExperimentWiring:
    def test_run_spec_dispatches_stratified(self):
        spec = ExperimentSpec(
            benchmark="swaptions", num_threads=2, scale=0.02,
            config=StratifiedConfig(),
        )
        result = run_spec(spec)
        assert result.taskpoint is not None
        assert "confidence" in result.taskpoint
        confidence = result.taskpoint["confidence"]
        assert confidence is None or confidence["level"] == 0.95

    def test_taskpoint_results_have_no_confidence_key(self):
        spec = ExperimentSpec(
            benchmark="swaptions", num_threads=2, scale=0.02,
            config=TaskPointConfig(),
        )
        result = run_spec(spec)
        assert result.taskpoint is not None
        assert "confidence" not in result.taskpoint

    def test_spec_round_trip_and_distinct_keys(self):
        stratified = ExperimentSpec(
            benchmark="cholesky", num_threads=4, config=StratifiedConfig()
        )
        taskpoint = ExperimentSpec(
            benchmark="cholesky", num_threads=4, config=TaskPointConfig()
        )
        assert stratified.content_key() != taskpoint.content_key()
        rebuilt = ExperimentSpec.from_dict(stratified.to_dict())
        assert rebuilt == stratified
        assert rebuilt.content_key() == stratified.content_key()
        assert isinstance(rebuilt.config, StratifiedConfig)
        assert stratified.label().endswith("[stratified]")

    def test_unknown_config_kind_rejected(self):
        data = ExperimentSpec(
            benchmark="cholesky", num_threads=4, config=StratifiedConfig()
        ).to_dict()
        data["config"]["kind"] = "mystery"
        with pytest.raises(ValueError, match="mystery"):
            ExperimentSpec.from_dict(data)

    def test_result_round_trip_preserves_confidence(self):
        spec = ExperimentSpec(
            benchmark="swaptions", num_threads=2, scale=0.02,
            config=StratifiedConfig(),
        )
        result = run_spec(spec)
        rebuilt = ExperimentResult.from_dict(result.to_dict())
        assert rebuilt.taskpoint.get("confidence") == result.taskpoint["confidence"]


def _allocate_controller(trace, active_workers=4):
    """Drive a stratified controller through pilot into an allocation."""
    controller = StratifiedController(
        trace,
        StratifiedConfig(
            budget=0.3, strata_per_type=2, min_stratum_size=4,
            pilot_samples=2, warmup_instances=0,
        ),
    )
    for instance_id in range(trace.columns.num_records):
        instance = make_instance(trace, instance_id)
        decision = controller.choose_mode(
            instance, worker_id=0, active_workers=active_workers,
            current_cycle=float(instance_id),
        )
        complete(controller, instance, decision,
                 ipc=2.0 + 0.1 * (instance_id % 5), active=active_workers)
        if controller.allocated:
            return controller
    raise AssertionError("controller never allocated")


MODES = ["detailed", "periodic", "lazy", "stratified"]


def _make_controller(mode, trace):
    if mode == "detailed":
        return AlwaysDetailedController()
    if mode == "periodic":
        return TaskPointController(periodic_config(sampling_period=50))
    if mode == "lazy":
        return TaskPointController(lazy_config())
    return StratifiedController(trace)


class TestResampleInterplay:
    """Satellite: resampling triggers must leave every mode's state coherent."""

    @pytest.mark.parametrize("mode", MODES)
    def test_new_task_type_resets_state(self, mode):
        trace = make_trace(num_per_type=60)
        controller = _make_controller(mode, trace)
        TaskSimSimulator().run(trace, num_threads=2, controller=controller)
        foreign = make_instance(trace, trace.columns.num_records + 10,
                                task_type="unseen-type")
        decision = controller.choose_mode(foreign, worker_id=0,
                                          active_workers=2, current_cycle=1e6)
        assert decision.mode is SimulationMode.DETAILED
        if mode == "detailed":
            return  # baseline controller keeps no sampling state
        stats = controller.stats
        assert stats.resample_reasons[ResampleReason.NEW_TASK_TYPE] >= 1
        if mode == "stratified":
            # No stale Neyman allocation: back to the pilot everywhere.
            assert controller.allocated is False
            assert all(s.count == 0 for s in controller.strata)
            assert all(s.target == s.pilot_target for s in controller.strata)
        else:
            assert controller.phase is SamplingPhase.SAMPLING
            assert all(s.valid.is_empty for s in controller.histories.states)

    @pytest.mark.parametrize("mode", ["periodic", "lazy", "stratified"])
    def test_thread_change_resets_state(self, mode):
        trace = make_trace(num_per_type=60)
        if mode == "stratified":
            controller = _allocate_controller(trace, active_workers=4)
            persistence = controller.config.thread_change_persistence
            assert controller._sampled_thread_count == 4
        else:
            controller = _make_controller(mode, trace)
            TaskSimSimulator().run(trace, num_threads=4, controller=controller)
            persistence = controller.config.thread_change_persistence
            if controller._sampled_thread_count is None:
                pytest.skip("run ended while sampling; no fast-forward state")
        reasons = controller.stats.resample_reasons
        before = reasons[ResampleReason.THREAD_COUNT_CHANGE]
        # Persistently collapse the active-thread count far outside the
        # tolerance band until the trigger fires.
        for step in range(persistence + 1):
            instance = make_instance(trace, step % trace.columns.num_records)
            controller.choose_mode(instance, worker_id=0, active_workers=1,
                                   current_cycle=1e6 + step)
            if reasons[ResampleReason.THREAD_COUNT_CHANGE] > before:
                break
        assert reasons[ResampleReason.THREAD_COUNT_CHANGE] == before + 1
        if mode == "stratified":
            assert controller.allocated is False
            assert all(s.count == 0 for s in controller.strata)
            assert all(s.target == s.pilot_target for s in controller.strata)
            assert controller._sampled_thread_count is None
        else:
            assert controller.phase is SamplingPhase.SAMPLING
            assert all(s.valid.is_empty for s in controller.histories.states)

    def test_stratified_reallocates_after_resample(self):
        trace = make_trace(num_per_type=60)
        controller = _allocate_controller(trace, active_workers=4)
        assert controller.stats.allocations == 1
        controller._trigger_resample(ResampleReason.THREAD_COUNT_CHANGE)
        # Re-drive the pilot: a fresh allocation must be recomputed from the
        # new samples rather than reusing the discarded one.
        for instance_id in range(trace.columns.num_records):
            instance = make_instance(trace, instance_id)
            decision = controller.choose_mode(instance, worker_id=0,
                                              active_workers=2,
                                              current_cycle=2e6 + instance_id)
            complete(controller, instance, decision, ipc=3.0, active=2)
            if controller.allocated:
                break
        assert controller.allocated
        assert controller.stats.allocations == 2
        assert controller._sampled_thread_count == 2

    def test_inflight_detailed_sample_across_resample_is_invalid(self):
        trace = make_trace(num_per_type=60)
        controller = _allocate_controller(trace, active_workers=4)
        instance = make_instance(trace, 0)
        decision = controller.choose_mode(instance, worker_id=0,
                                          active_workers=4, current_cycle=1e6)
        assert decision.mode is SimulationMode.DETAILED
        valid_before = controller.stats.valid_samples
        controller._trigger_resample(ResampleReason.THREAD_COUNT_CHANGE)
        complete(controller, instance, decision, ipc=2.0, active=4)
        assert controller.stats.valid_samples == valid_before
        assert controller.stats.invalid_samples >= 1
        assert all(s.count == 0 for s in controller.strata)
