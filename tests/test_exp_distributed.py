"""Fault-injection and equivalence tests for the distributed backend.

Covers the `repro.exp.distributed` supervisor and the `repro.exp.worker`
protocol: bit-exact equivalence with the serial backend (results and store
bytes), deterministic worker-kill/requeue convergence, poison specs that are
recorded without stalling the queue, SIGINT shutdown with no orphan
processes or half-written store entries, heartbeat detection of stopped
workers, and the worker's socket transport.
"""

import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import tempfile
import textwrap
import threading
import time

import pytest

import repro
from repro.core.config import lazy_config, periodic_config
from repro.exp import (
    AsyncWorkerBackend,
    ExperimentExecutionError,
    ExperimentFailure,
    ExperimentSpec,
    ProcessPoolBackend,
    ResultStore,
    SerialBackend,
    run_experiments,
    run_spec,
)
from repro.exp import protocol
from repro.exp.worker import FAULT_ENV

from exp_helpers import deterministic_fields, store_result_bytes

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional test dep
    HAVE_HYPOTHESIS = False

SCALE = 0.004


def small_spec(benchmark="swaptions", threads=2, config=lazy_config(), **kwargs):
    return ExperimentSpec(
        benchmark=benchmark, num_threads=threads, scale=SCALE, trace_seed=1,
        config=config, **kwargs,
    )


def small_grid():
    specs = []
    for benchmark in ("swaptions", "vector-operation"):
        for threads in (1, 2):
            spec = small_spec(benchmark=benchmark, threads=threads)
            specs.extend([spec, spec.baseline()])
    # A config that actually resamples, so resample_reasons is non-empty and
    # must survive the JSON wire format (regression: enum keys crashed it).
    from repro.core.config import TaskPointConfig

    resampling = small_spec(
        benchmark="cholesky",
        config=TaskPointConfig(warmup_instances=1, history_size=2,
                               sampling_period=5),
    )
    specs.extend([resampling, resampling.baseline()])
    return specs


def fast_backend(**kwargs):
    kwargs.setdefault("num_workers", 2)
    kwargs.setdefault("heartbeat_interval", 0.5)
    return AsyncWorkerBackend(**kwargs)


def subprocess_env(**overrides):
    """Environment for driver/worker subprocesses that can import repro."""
    env = dict(os.environ)
    package_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    if package_root not in (existing or "").split(os.pathsep):
        env["PYTHONPATH"] = package_root + (
            os.pathsep + existing if existing else ""
        )
    env.update(overrides)
    return env


class TestAsyncEquivalence:
    def test_matches_serial_results(self):
        specs = small_grid()
        serial = run_experiments(specs, backend=SerialBackend())
        distributed = run_experiments(specs, backend=fast_backend())
        assert len(serial) == len(distributed) == len(specs)
        for left, right in zip(serial, distributed):
            assert deterministic_fields(left) == deterministic_fields(right)

    def test_store_byte_identical_to_serial(self, tmp_path):
        # Acceptance criterion: same spec grid => same bytes in the store.
        specs = small_grid()
        run_experiments(specs, backend=SerialBackend(),
                        store=ResultStore(tmp_path / "serial"))
        run_experiments(specs, backend=fast_backend(),
                        store=ResultStore(tmp_path / "async"))
        serial_bytes = store_result_bytes(tmp_path / "serial")
        async_bytes = store_result_bytes(tmp_path / "async")
        assert serial_bytes  # the comparison is not vacuous
        assert serial_bytes == async_bytes

    def test_streaming_store_matches_driver_store(self, tmp_path):
        # A store attached to the backend itself receives the same bytes as
        # one populated by run_experiments.
        specs = small_grid()
        backend = fast_backend(store=ResultStore(tmp_path / "streamed"))
        backend.run(specs)
        run_experiments(specs, backend=SerialBackend(),
                        store=ResultStore(tmp_path / "serial"))
        assert (store_result_bytes(tmp_path / "streamed")
                == store_result_bytes(tmp_path / "serial"))

    def test_duplicate_specs_share_results(self):
        spec = small_spec()
        results = fast_backend().run([spec, spec.baseline(), spec])
        assert deterministic_fields(results[0]) == deterministic_fields(results[2])
        assert results[1].taskpoint is None

    def test_empty_batch(self):
        assert fast_backend().run([]) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            AsyncWorkerBackend(num_workers=0)
        with pytest.raises(ValueError):
            AsyncWorkerBackend(max_retries=-1)
        with pytest.raises(ValueError):
            AsyncWorkerBackend(heartbeat_interval=0.0)
        with pytest.raises(ValueError):
            # A timeout at or below the interval would kill every healthy
            # worker on the monitor's first wakeup.
            AsyncWorkerBackend(heartbeat_interval=5.0, heartbeat_timeout=2.0)

    def test_memory_store_streaming(self):
        # A MemoryResultStore attached to the backend must stream, not wedge.
        from repro.exp import MemoryResultStore

        store = MemoryResultStore()
        backend = fast_backend(store=store)
        specs = [small_spec(), small_spec().baseline()]
        results = backend.run(specs)
        assert len(store) == 2
        assert deterministic_fields(store.get(specs[0])) == deterministic_fields(
            results[0]
        )

    def test_no_workers_outlive_the_run(self):
        backend = fast_backend()
        backend.run([small_spec()])
        assert backend.active_pids() == []


class TestFaultInjection:
    def test_worker_killed_mid_batch_requeues_and_converges(self, tmp_path):
        # Acceptance criterion: a worker is SIGKILLed mid-batch (the fault
        # hook makes exactly one worker die, once, upon receiving the target
        # spec) and the batch still converges to serial-identical results.
        specs = small_grid()
        target_key = specs[0].content_key()
        flag = tmp_path / "died-once"
        backend = fast_backend(
            worker_env={FAULT_ENV: f"{target_key[:16]}:{flag}"},
        )
        results = backend.run(specs)
        assert flag.exists(), "the fault hook never fired"
        assert backend.stats.get("worker_deaths", 0) >= 1
        assert backend.stats.get("requeues", 0) >= 1
        reference = SerialBackend().run(specs)
        for left, right in zip(reference, results):
            assert deterministic_fields(left) == deterministic_fields(right)

    def test_repeated_death_is_a_bounded_failure(self, tmp_path):
        # With max_retries=0 a single death exhausts the job's budget: the
        # spec is recorded as failed and the rest of the batch completes.
        specs = small_grid()
        target_key = specs[0].content_key()
        flag = tmp_path / "died-once"
        backend = fast_backend(
            max_retries=0,
            worker_env={FAULT_ENV: f"{target_key[:16]}:{flag}"},
        )
        outcomes = backend.run_outcomes(specs)
        assert isinstance(outcomes[0], ExperimentFailure)
        assert outcomes[0].error_type == "WorkerDied"
        assert outcomes[0].attempts == 1
        reference = SerialBackend().run(specs[1:])
        for left, right in zip(reference, outcomes[1:]):
            assert deterministic_fields(left) == deterministic_fields(right)

    def test_poison_spec_recorded_without_stalling_the_queue(self, tmp_path):
        poison = small_spec(benchmark="no-such-benchmark")
        specs = small_grid() + [poison]
        store = ResultStore(tmp_path / "store")
        results = run_experiments(
            specs, backend=fast_backend(), store=store, on_error="record"
        )
        # Every healthy spec completed and was persisted...
        assert results[-1] is None
        assert all(result is not None for result in results[:-1])
        assert len(store) == len({s.content_key() for s in specs}) - 1
        # ... and the poison spec left a diagnostic, not a cache entry.
        failure = store.get_failure(poison)
        assert failure is not None
        assert failure.error_type == "KeyError"
        assert "no-such-benchmark" in failure.message
        assert store.get(poison) is None

    def test_poison_spec_raises_aggregate_error_by_default(self):
        poison = small_spec(benchmark="no-such-benchmark")
        with pytest.raises(ExperimentExecutionError) as excinfo:
            run_experiments([small_spec(), poison], backend=fast_backend())
        assert len(excinfo.value.failures) == 1
        assert excinfo.value.failures[0].error_type == "KeyError"

    def test_stopped_worker_is_detected_by_heartbeat(self):
        # SIGSTOP a worker: the process is alive but silent, so only the
        # heartbeat can notice.  The supervisor must kill it and converge.
        # One worker slot, and the stop lands only after a job finished, so
        # the stopped process has provably completed its handshake (startup
        # grace does not apply) and holds a job mid-batch.
        specs = [
            ExperimentSpec("cholesky", num_threads=threads, scale=0.2,
                           trace_seed=seed)
            for threads in (1, 2) for seed in (1, 2, 3)
        ]
        backend = AsyncWorkerBackend(
            num_workers=1, heartbeat_interval=0.2, heartbeat_timeout=0.8,
        )
        results = {}

        def run():
            results["outcome"] = backend.run(specs)

        thread = threading.Thread(target=run)
        thread.start()
        stopped = None
        deadline = time.time() + 20.0
        while stopped is None and time.time() < deadline and thread.is_alive():
            pids = backend.active_pids()
            if backend.stats.get("finished_jobs", 0) >= 1 and pids:
                stopped = pids[0]
                os.kill(stopped, signal.SIGSTOP)
            else:
                time.sleep(0.01)
        thread.join(timeout=60.0)
        assert not thread.is_alive(), "supervisor deadlocked on a stopped worker"
        assert stopped is not None, "no worker ever spawned"
        assert backend.stats.get("heartbeat_kills", 0) >= 1
        reference = SerialBackend().run(specs)
        for left, right in zip(reference, results["outcome"]):
            assert deterministic_fields(left) == deterministic_fields(right)


SIGINT_DRIVER = textwrap.dedent("""
    import sys, threading, time
    from repro.exp import AsyncWorkerBackend, ExperimentSpec, ResultStore

    store = ResultStore(sys.argv[1])
    specs = [
        ExperimentSpec("cholesky", num_threads=threads, scale=0.2, trace_seed=seed)
        for threads in (1, 2, 3, 4) for seed in (1, 2, 3, 4, 5)
    ]
    backend = AsyncWorkerBackend(num_workers=2, heartbeat_interval=0.5, store=store)

    def announce():
        while True:
            pids = backend.active_pids()
            if len(pids) >= 2:
                print("PIDS " + " ".join(map(str, pids)), flush=True)
                return
            time.sleep(0.02)

    threading.Thread(target=announce, daemon=True).start()
    try:
        backend.run(specs)
    except KeyboardInterrupt:
        print("LIVE " + " ".join(map(str, backend.active_pids())), flush=True)
        print("INTERRUPTED", flush=True)
        sys.exit(3)
    print("COMPLETED", flush=True)
""")


class TestCliAsyncBackend:
    # Lives here (not tests/test_cli.py) so the subprocess-spawning CLI path
    # runs inside CI's hard-timeout distributed step, not the tier-1 step.
    def test_compare_async_backend(self, capsys):
        from repro.cli import main

        code = main([
            "compare", "swaptions", "--scale", "0.004", "--threads", "2",
            "--policy", "lazy", "--backend", "async", "--workers", "2",
        ])
        assert code == 0
        assert "execution-time error" in capsys.readouterr().out


class TestSigintShutdown:
    def test_sigint_clean_shutdown_no_orphans_no_torn_entries(self, tmp_path):
        store_dir = tmp_path / "store"
        process = subprocess.Popen(
            [sys.executable, "-c", SIGINT_DRIVER, str(store_dir)],
            stdout=subprocess.PIPE, text=True, env=subprocess_env(),
        )
        try:
            worker_pids = None
            for line in process.stdout:
                if line.startswith("PIDS "):
                    worker_pids = [int(part) for part in line.split()[1:]]
                    break
                if line.startswith("COMPLETED"):
                    break
            assert worker_pids, "driver finished before any worker spawned"
            time.sleep(0.3)  # let experiments be genuinely in flight
            process.send_signal(signal.SIGINT)
            remaining = process.stdout.read()
            returncode = process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        assert returncode == 3, f"driver output: {remaining!r}"
        assert "INTERRUPTED" in remaining
        # The supervisor reported an empty live-worker set on the way out...
        live_lines = [l.strip() for l in remaining.splitlines()
                      if l.startswith("LIVE")]
        assert live_lines == ["LIVE"]
        # ... and the worker processes are actually gone.
        deadline = time.time() + 5.0
        while time.time() < deadline:
            alive = [pid for pid in worker_pids if _pid_alive(pid)]
            if not alive:
                break
            time.sleep(0.05)
        assert not alive, f"orphan worker processes: {alive}"
        # No half-written store entries: no temp files, every entry parses.
        leftovers = [
            path for path in pathlib.Path(store_dir).rglob(".tmp-*")
        ]
        assert leftovers == []
        for path in pathlib.Path(store_dir).rglob("*.json"):
            payload = json.loads(path.read_text(encoding="utf-8"))
            assert "result" in payload and "spec" in payload


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - different-user pid reuse
        return True
    return True


class TestWorkerTransport:
    """The worker speaks the same frames over a TCP socket (SSH-ready)."""

    def test_tcp_worker_round_trip(self):
        spec = small_spec()
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as server:
            server.bind(("127.0.0.1", 0))
            server.listen(1)
            port = server.getsockname()[1]
            worker = subprocess.Popen(
                [sys.executable, "-m", "repro.exp.worker",
                 "--connect", "127.0.0.1", str(port)],
                env=subprocess_env(),
            )
            try:
                server.settimeout(30.0)
                connection, _ = server.accept()
                with connection, \
                        connection.makefile("rb") as reader, \
                        connection.makefile("wb") as writer:
                    hello = protocol.read_frame(reader)
                    assert hello["type"] == "hello"
                    assert hello["protocol"] == protocol.PROTOCOL_VERSION
                    assert hello["pid"] == worker.pid
                    protocol.write_frame(
                        writer, {"type": "run", "job": 7, "spec": spec.to_dict()}
                    )
                    message = protocol.read_frame(reader)
                    assert message["type"] == "result"
                    assert message["job"] == 7
                    local = deterministic_fields(run_spec(spec))
                    remote = dict(message["result"])
                    remote.pop("wall_seconds")
                    assert remote == local
                    protocol.write_frame(writer, {"type": "shutdown"})
                assert worker.wait(timeout=30) == 0
            finally:
                if worker.poll() is None:
                    worker.kill()
                    worker.wait()

    def test_worker_pongs_while_simulating(self):
        # The reader thread answers pings mid-job, so supervisor heartbeats
        # measure liveness, not job length.
        busy_spec = ExperimentSpec("cholesky", num_threads=2, scale=1.0,
                                   trace_seed=1)
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as server:
            server.bind(("127.0.0.1", 0))
            server.listen(1)
            port = server.getsockname()[1]
            worker = subprocess.Popen(
                [sys.executable, "-m", "repro.exp.worker",
                 "--connect", "127.0.0.1", str(port)],
                env=subprocess_env(),
            )
            try:
                server.settimeout(30.0)
                connection, _ = server.accept()
                with connection, \
                        connection.makefile("rb") as reader, \
                        connection.makefile("wb") as writer:
                    assert protocol.read_frame(reader)["type"] == "hello"
                    protocol.write_frame(
                        writer,
                        {"type": "run", "job": 0, "spec": busy_spec.to_dict()},
                    )
                    time.sleep(0.2)  # the simulation is now running
                    protocol.write_frame(writer, {"type": "ping", "seq": 42})
                    message = protocol.read_frame(reader)
                    assert message["type"] == "pong"
                    assert message["seq"] == 42
                    # Pongs carry the worker's trace-memo counters; the
                    # running job's trace was generated, so exactly one miss.
                    memo = message["memo"]
                    assert memo["misses"] >= 1
                    assert memo["hits"] >= 0
                    assert memo["entries"] <= memo["capacity"]
                    assert protocol.read_frame(reader)["type"] == "result"
                    protocol.write_frame(writer, {"type": "shutdown"})
                assert worker.wait(timeout=30) == 0
            finally:
                if worker.poll() is None:
                    worker.kill()
                    worker.wait()

    def test_worker_error_frame_carries_originating_traceback(self):
        # A poison spec's error frame must ship the full traceback — the
        # supervisor's .error.json diagnostic is all a user gets when a
        # remote worker fails, so "message only" makes failures undebuggable.
        from repro.exp.worker import serve

        poison = ExperimentSpec("no-such-benchmark", num_threads=2,
                                scale=0.004, config=lazy_config())
        to_worker, commands = socket.socketpair()
        from_worker, answers = socket.socketpair()
        with to_worker, commands, from_worker, answers, \
                to_worker.makefile("rb") as worker_in, \
                answers.makefile("wb") as worker_out, \
                commands.makefile("wb") as writer, \
                from_worker.makefile("rb") as reader:
            server = threading.Thread(
                target=serve, args=(worker_in, worker_out), daemon=True
            )
            server.start()
            assert protocol.read_frame(reader)["type"] == "hello"
            protocol.write_frame(
                writer, {"type": "run", "job": 3, "spec": poison.to_dict()}
            )
            message = protocol.read_frame(reader)
            protocol.write_frame(writer, {"type": "shutdown"})
            server.join(timeout=10)
            assert not server.is_alive()
        assert message["type"] == "error"
        assert message["job"] == 3
        failure = ExperimentFailure.from_dict(message["error"])
        assert failure.error_type == "KeyError"
        assert "no-such-benchmark" in failure.message
        assert "get_workload" in failure.traceback
        assert "Traceback (most recent call last)" in failure.traceback


HASHSEED_SNIPPET = textwrap.dedent("""
    import hashlib, pathlib, tempfile
    from repro.core.config import lazy_config, periodic_config
    from repro.exp import (AsyncWorkerBackend, ExperimentSpec,
                           ProcessPoolBackend, ResultStore, SerialBackend,
                           run_experiments)

    specs = []
    for benchmark in ("histogram", "swaptions"):
        for config in (lazy_config(), periodic_config()):
            spec = ExperimentSpec(benchmark, num_threads=2, scale=0.004,
                                  config=config)
            specs += [spec, spec.baseline()]

    def digest(directory):
        root = pathlib.Path(directory)
        accumulator = hashlib.sha256()
        for path in sorted(root.rglob("*.json")):
            if path.name.startswith(".") or path.name.endswith(".error.json"):
                continue
            accumulator.update(path.relative_to(root).as_posix().encode())
            accumulator.update(path.read_bytes())
        return accumulator.hexdigest()

    digests = []
    backends = (
        SerialBackend(),
        ProcessPoolBackend(max_workers=2),
        AsyncWorkerBackend(num_workers=2, heartbeat_interval=0.5),
    )
    for backend in backends:
        with tempfile.TemporaryDirectory() as directory:
            run_experiments(specs, backend=backend,
                            store=ResultStore(directory))
            digests.append(digest(directory))
    assert len(set(digests)) == 1, digests
    print(digests[0])
""")


class TestCrossBackendDeterminism:
    def test_all_backends_identical_across_hash_seeds(self):
        """Serial, pool and async-worker stores are byte-identical, and that
        shared digest is independent of PYTHONHASHSEED."""
        digests = {}
        for hash_seed in ("1", "4242"):
            output = subprocess.run(
                [sys.executable, "-c", HASHSEED_SNIPPET],
                capture_output=True, text=True, check=True,
                env=subprocess_env(PYTHONHASHSEED=hash_seed),
            )
            digests[hash_seed] = output.stdout.strip()
        assert digests["1"] == digests["4242"]
        assert len(digests["1"]) == 64


if HAVE_HYPOTHESIS:

    GRID_POINTS = st.tuples(
        st.sampled_from(("swaptions", "vector-operation", "histogram")),
        st.integers(min_value=1, max_value=2),
        st.sampled_from((0, 1, 2)),  # index into CONFIG_CHOICES
    )
    CONFIG_CHOICES = (None, lazy_config(), periodic_config())

    class TestPropertyEquivalence:
        @settings(
            max_examples=4, deadline=None, derandomize=True,
            suppress_health_check=[HealthCheck.too_slow],
        )
        @given(grid=st.lists(GRID_POINTS, min_size=1, max_size=3, unique=True))
        def test_random_grids_equivalent_across_backends(self, grid):
            specs = []
            for benchmark, threads, config_index in grid:
                spec = ExperimentSpec(
                    benchmark, num_threads=threads, scale=SCALE,
                    config=CONFIG_CHOICES[config_index],
                )
                specs.append(spec)
                specs.append(spec.baseline())
            backends = (
                SerialBackend(),
                ProcessPoolBackend(max_workers=2),
                fast_backend(),
            )
            snapshots = []
            for backend in backends:
                with tempfile.TemporaryDirectory() as directory:
                    run_experiments(specs, backend=backend,
                                    store=ResultStore(directory))
                    snapshots.append(store_result_bytes(directory))
            assert snapshots[0]  # non-vacuous
            assert snapshots[0] == snapshots[1] == snapshots[2]
