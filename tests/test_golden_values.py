"""Golden-value regression tests pinning simulation results bit-exactly.

The fingerprints below were captured from the pre-columnar-refactor
implementation (PR 1 tree) at scale 0.02, seed 1, 4 threads: total cycles as
IEEE-754 hex strings, deterministic cost counters, and a SHA-256 over every
per-instance result row (id, worker, mode, start/end cycle and IPC in hex,
warm-up flag) in completion order.

Any change to trace generation, scheduling, the detailed cost model, the
sampling controller or the fast-forward arithmetic that alters even the last
bit of any of these values fails here.  Intentional model changes must update
the fingerprints (regenerate with ``_fingerprint`` below) and justify the
drift in the commit message.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.arch.config import high_performance_config, low_power_config
from repro.core.config import lazy_config, periodic_config
from repro.core.controller import TaskPointController
from repro.sim.engine import SimulationEngine
from repro.sim.simulator import TaskSimSimulator
from repro.workloads.registry import get_workload

SCALE = 0.02
SEED = 1
THREADS = 4

GOLDEN = {
    ("cholesky", "highperf", "detailed"): {
        "total_cycles": "0x1.05088f20de15dp+20",
        "num_instances": 392,
        "cost_detailed_instances": 392,
        "cost_burst_instances": 0,
        "cost_detailed_instr": 14551644,
        "instances_sha": "5eb1021bba428ad45a225f81c0ffafb93cad3f4c3ff95b138f9cbba8b2ee79e3",
    },
    ("cholesky", "highperf", "periodic"): {
        "total_cycles": "0x1.078a2df016746p+20",
        "num_instances": 392,
        "cost_detailed_instances": 44,
        "cost_burst_instances": 348,
        "cost_detailed_instr": 1624365,
        "instances_sha": "67e0d35c451d2675d044cdfc06e201bebdb12312e7290375bc2b1d377b5620c5",
    },
    ("cholesky", "highperf", "lazy"): {
        "total_cycles": "0x1.078a2df016746p+20",
        "num_instances": 392,
        "cost_detailed_instances": 44,
        "cost_burst_instances": 348,
        "cost_detailed_instr": 1624365,
        "instances_sha": "67e0d35c451d2675d044cdfc06e201bebdb12312e7290375bc2b1d377b5620c5",
    },
    ("cholesky", "lowpower", "detailed"): {
        "total_cycles": "0x1.aaf44d5555558p+20",
        "num_instances": 392,
        "cost_detailed_instances": 392,
        "cost_burst_instances": 0,
        "cost_detailed_instr": 14551644,
        "instances_sha": "eedf13eb14c430889efc4582a0da0e800a23d3f246dc64a0f0477c997a9c2955",
    },
    ("cholesky", "lowpower", "periodic"): {
        "total_cycles": "0x1.a32911c42f6cfp+20",
        "num_instances": 392,
        "cost_detailed_instances": 44,
        "cost_burst_instances": 348,
        "cost_detailed_instr": 1624365,
        "instances_sha": "5468cb8ff4e64b83fcf3f3078fcef2436d5438aac90969d0f7b62d9a3ceab353",
    },
    ("cholesky", "lowpower", "lazy"): {
        "total_cycles": "0x1.a32911c42f6cfp+20",
        "num_instances": 392,
        "cost_detailed_instances": 44,
        "cost_burst_instances": 348,
        "cost_detailed_instr": 1624365,
        "instances_sha": "5468cb8ff4e64b83fcf3f3078fcef2436d5438aac90969d0f7b62d9a3ceab353",
    },
    ("swaptions", "highperf", "detailed"): {
        "total_cycles": "0x1.e612f86060607p+19",
        "num_instances": 328,
        "cost_detailed_instances": 328,
        "cost_burst_instances": 0,
        "cost_detailed_instr": 14410107,
        "instances_sha": "8efa5eaa9128b5651d782cab9a7e3ddc6e064529e65fba1296f5730feaf275a4",
    },
    ("swaptions", "highperf", "periodic"): {
        "total_cycles": "0x1.e626eac71f361p+19",
        "num_instances": 328,
        "cost_detailed_instances": 15,
        "cost_burst_instances": 313,
        "cost_detailed_instr": 657761,
        "instances_sha": "7e584e2a3786ce9528fa6560aded6678f75f32639019d04c3aeeab061faaca36",
    },
    ("swaptions", "highperf", "lazy"): {
        "total_cycles": "0x1.e626eac71f361p+19",
        "num_instances": 328,
        "cost_detailed_instances": 15,
        "cost_burst_instances": 313,
        "cost_detailed_instr": 657761,
        "instances_sha": "7e584e2a3786ce9528fa6560aded6678f75f32639019d04c3aeeab061faaca36",
    },
    ("swaptions", "lowpower", "detailed"): {
        "total_cycles": "0x1.9f8c4aaaaaaa9p+20",
        "num_instances": 328,
        "cost_detailed_instances": 328,
        "cost_burst_instances": 0,
        "cost_detailed_instr": 14410107,
        "instances_sha": "7e766c55d0e0a12fac7349517dd699249b19c8aafa798f2b2917fe9861c21bcb",
    },
    ("swaptions", "lowpower", "periodic"): {
        "total_cycles": "0x1.a5295ea06cfd9p+20",
        "num_instances": 328,
        "cost_detailed_instances": 15,
        "cost_burst_instances": 313,
        "cost_detailed_instr": 657761,
        "instances_sha": "5167ad70042253303141e1c874646057dfeb47b0bbc88ea6e4163ee9c49e57e0",
    },
    ("swaptions", "lowpower", "lazy"): {
        "total_cycles": "0x1.a5295ea06cfd9p+20",
        "num_instances": 328,
        "cost_detailed_instances": 15,
        "cost_burst_instances": 313,
        "cost_detailed_instr": 657761,
        "instances_sha": "5167ad70042253303141e1c874646057dfeb47b0bbc88ea6e4163ee9c49e57e0",
    },
}

_ARCHITECTURES = {
    "highperf": high_performance_config,
    "lowpower": low_power_config,
}


def _controller(mode: str):
    if mode == "detailed":
        return None
    if mode == "periodic":
        return TaskPointController(config=periodic_config())
    return TaskPointController(config=lazy_config())


def _fingerprint(result) -> dict:
    blob = ",".join(
        f"{i.instance_id}:{i.worker_id}:{i.mode.value}:{i.start_cycle.hex()}"
        f":{i.end_cycle.hex()}:{i.ipc.hex()}:{int(i.is_warmup)}"
        for i in result.instances
    )
    return {
        "total_cycles": result.total_cycles.hex(),
        "num_instances": result.num_instances,
        "cost_detailed_instances": result.cost.detailed_instances,
        "cost_burst_instances": result.cost.burst_instances,
        "cost_detailed_instr": result.cost.detailed_instructions,
        "instances_sha": hashlib.sha256(blob.encode()).hexdigest(),
    }


@pytest.fixture(scope="module")
def traces():
    return {
        name: get_workload(name).generate(scale=SCALE, seed=SEED)
        for name in ("cholesky", "swaptions")
    }


@pytest.mark.parametrize(
    "workload,arch_name,mode", sorted(GOLDEN), ids=lambda v: str(v)
)
def test_golden_simulation_values(traces, workload, arch_name, mode):
    simulator = TaskSimSimulator(architecture=_ARCHITECTURES[arch_name]())
    result = simulator.run(
        traces[workload],
        num_threads=THREADS,
        controller=_controller(mode),
        measure_wall_time=False,
    )
    assert _fingerprint(result) == GOLDEN[(workload, arch_name, mode)]


#: The three detailed-path backends must all reproduce the golden values:
#: the default grouped/vectorised engine is covered above (via the
#: simulator); these pin the batched-scalar path (grouped dispatch off) and
#: the per-record oracle to the *same* fingerprints, so a drift in any one
#: implementation — not just a drift in all three at once — fails loudly.
_BACKEND_FLAGS = {
    "batched-scalar": {"use_vector": False},
    "per-record": {"use_batched": False},
}


@pytest.mark.parametrize("backend", sorted(_BACKEND_FLAGS))
@pytest.mark.parametrize(
    "workload,arch_name,mode", sorted(GOLDEN), ids=lambda v: str(v)
)
def test_golden_values_backend_invariant(traces, workload, arch_name, mode, backend):
    engine = SimulationEngine(
        traces[workload],
        _ARCHITECTURES[arch_name](),
        num_threads=THREADS,
        controller=_controller(mode),
        **_BACKEND_FLAGS[backend],
    )
    assert _fingerprint(engine.run()) == GOLDEN[(workload, arch_name, mode)]
