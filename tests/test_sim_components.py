"""Unit tests for simulation modes, cost accounting and result objects."""

import pytest

from repro.sim.cost import BURST_COST_PER_INSTANCE, SimulationCost
from repro.sim.modes import (
    AlwaysDetailedController,
    FixedIpcController,
    ModeController,
    ModeDecision,
    SimulationMode,
)
from repro.sim.results import InstanceResult, SimulationResult


class TestModeDecision:
    def test_burst_requires_positive_ipc(self):
        with pytest.raises(ValueError):
            ModeDecision(mode=SimulationMode.BURST)
        with pytest.raises(ValueError):
            ModeDecision(mode=SimulationMode.BURST, ipc=0.0)

    def test_detailed_needs_no_ipc(self):
        decision = ModeDecision(mode=SimulationMode.DETAILED)
        assert decision.ipc is None
        assert decision.is_warmup is False


class TestBuiltinControllers:
    def test_always_detailed(self):
        controller = AlwaysDetailedController()
        decision = controller.choose_mode(None, 0, 1, 0.0)
        assert decision.mode is SimulationMode.DETAILED
        assert isinstance(controller, ModeController)

    def test_fixed_ipc(self):
        controller = FixedIpcController(ipc=2.5)
        decision = controller.choose_mode(None, 0, 1, 0.0)
        assert decision.mode is SimulationMode.BURST
        assert decision.ipc == 2.5
        assert isinstance(controller, ModeController)

    def test_fixed_ipc_rejects_non_positive(self):
        with pytest.raises(ValueError):
            FixedIpcController(ipc=0)


class TestSimulationCost:
    def test_charging(self):
        cost = SimulationCost()
        cost.charge_detailed(instructions=1000, memory_events=20)
        cost.charge_burst()
        cost.charge_burst()
        assert cost.detailed_instances == 1
        assert cost.burst_instances == 2
        assert cost.detailed_memory_events == 20
        assert cost.total_units == pytest.approx(1000 + 2 * BURST_COST_PER_INSTANCE)
        assert cost.detailed_fraction == pytest.approx(1 / 3)

    def test_speedup_over_baseline(self):
        baseline = SimulationCost()
        baseline.charge_detailed(100_000, 100)
        sampled = SimulationCost()
        sampled.charge_detailed(10_000, 10)
        for _ in range(90):
            sampled.charge_burst()
        assert sampled.speedup_over(baseline) > 1.0
        assert baseline.speedup_over(baseline) == pytest.approx(1.0)

    def test_empty_cost_speedup_is_infinite(self):
        baseline = SimulationCost()
        baseline.charge_detailed(100, 1)
        assert SimulationCost().speedup_over(baseline) == float("inf")

    def test_detailed_fraction_zero_when_empty(self):
        assert SimulationCost().detailed_fraction == 0.0


def _instance(instance_id, task_type="t", mode=SimulationMode.DETAILED,
              start=0.0, end=100.0, instructions=400, warmup=False):
    return InstanceResult(
        instance_id=instance_id,
        task_type=task_type,
        worker_id=0,
        mode=mode,
        instructions=instructions,
        start_cycle=start,
        end_cycle=end,
        ipc=instructions / (end - start),
        is_warmup=warmup,
    )


class TestSimulationResult:
    def _result(self):
        instances = [
            _instance(0, "a", start=0, end=100),
            _instance(1, "a", mode=SimulationMode.BURST, start=0, end=50),
            _instance(2, "b", start=100, end=300, instructions=800),
            _instance(3, "a", start=50, end=150, warmup=True),
        ]
        return SimulationResult(
            benchmark="bench",
            architecture="high-performance",
            num_threads=2,
            total_cycles=300.0,
            instances=instances,
        )

    def test_mode_partition(self):
        result = self._result()
        assert result.num_instances == 4
        assert len(result.detailed_instances) == 3
        assert len(result.burst_instances) == 1

    def test_ipc_by_type_excludes_burst_and_warmup(self):
        grouped = self._result().ipc_by_type(detailed_only=True)
        assert len(grouped["a"]) == 1
        assert len(grouped["b"]) == 1

    def test_ipc_by_type_can_include_everything(self):
        grouped = self._result().ipc_by_type(detailed_only=False)
        assert len(grouped["a"]) == 3

    def test_error_versus(self):
        sampled = self._result()
        reference = self._result()
        reference.total_cycles = 250.0
        assert sampled.error_versus(reference) == pytest.approx(50 / 250)
        with pytest.raises(ValueError):
            reference.total_cycles = 0.0
            sampled.error_versus(reference)

    def test_average_ipc(self):
        result = self._result()
        assert result.average_ipc() == pytest.approx(result.total_instructions / 300.0)

    def test_wall_speedup(self):
        sampled = self._result()
        reference = self._result()
        assert sampled.wall_speedup_versus(reference) is None
        sampled.wall_seconds = 1.0
        reference.wall_seconds = 10.0
        assert sampled.wall_speedup_versus(reference) == pytest.approx(10.0)

    def test_summary_keys(self):
        summary = self._result().summary()
        assert summary["benchmark"] == "bench"
        assert summary["threads"] == 2
        assert summary["instances"] == 4

    def test_instances_of(self):
        assert len(self._result().instances_of("a")) == 3
        assert self._result().instances_of("zzz") == []

    def test_instance_cycles(self):
        instance = _instance(0, start=10.0, end=35.0)
        assert instance.cycles == pytest.approx(25.0)
