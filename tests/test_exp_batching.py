"""Batched-dispatch harness: amortisation, partial-batch faults, negotiation.

The headline suite for protocol-v3 ``run_batch`` dispatch.  Covers:

* round-trip amortisation under a simulated per-frame link latency (the
  worker-side ``REPRO_EXP_WORKER_DELAY`` hook): batching measurably reduces
  both the dispatch frame count (>= 2x at batch >= 4) and the wall-clock,
* SIGKILL mid-batch with **partial-batch requeue**: only the unacknowledged
  specs of the dead worker's batch re-run (proved by the per-spec
  execution-count probe), and the result store stays byte-identical to a
  serial run,
* store byte-identity for batch sizes {1, 4, 16, adaptive} across the
  serial/pool/async/multihost backends (parametrised + hypothesis grids),
* negotiation fallback: a protocol-v2 peer (no ``batch`` capability in its
  hello, faked via ``REPRO_EXP_WORKER_COMPAT=2``) keeps being dispatched one
  spec per frame and still produces identical results,
* frame compression behaviour around the 512-byte threshold, and
* the user-facing surfaces: ``make_named_backend(batch=...)``, the CLI
  ``--batch`` flag, ``scripts/dispatch_bench.py`` (which records
  ``BENCH_dispatch.json``) and the ``scripts/multihost_sweep_demo.py``
  argument handling.
"""

import io
import json
import pathlib
import socket
import struct
import subprocess
import sys
import tempfile
import textwrap
import time
from collections import Counter

import pytest

from repro.core.config import lazy_config, periodic_config
from repro.exp import (
    AdaptiveBatchSizer,
    AsyncWorkerBackend,
    ExperimentFailure,
    ExperimentSpec,
    MultiHostBackend,
    ProcessPoolBackend,
    ResultStore,
    SerialBackend,
    make_named_backend,
    parse_batch,
    run_experiments,
    run_spec,
)
from repro.exp import protocol
from repro.exp.distributed import DEFAULT_BATCH_CAP
from repro.exp.worker import COMPAT_ENV, DELAY_ENV, EXEC_LOG_ENV, FAULT_ENV

from exp_helpers import deterministic_fields, store_result_bytes

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional test dep
    HAVE_HYPOTHESIS = False

SCALE = 0.004

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

BATCH_MODES = (1, 4, 16, "adaptive")


def small_spec(benchmark="swaptions", threads=2, config=lazy_config(), **kwargs):
    return ExperimentSpec(
        benchmark=benchmark, num_threads=threads, scale=SCALE, trace_seed=1,
        config=config, **kwargs,
    )


def unique_grid(count=8):
    """``count`` unique sub-second specs (the batching regime), in order."""
    benchmarks = ("swaptions", "vector-operation", "histogram", "reduction")
    specs = []
    seed = 0
    while len(specs) < count:
        seed += 1
        for benchmark in benchmarks:
            if len(specs) >= count:
                break
            specs.append(ExperimentSpec(
                benchmark, num_threads=2, scale=SCALE, trace_seed=seed,
                config=lazy_config(),
            ))
    assert len({spec.content_key() for spec in specs}) == count
    return specs


def fast_backend(**kwargs):
    kwargs.setdefault("num_workers", 2)
    kwargs.setdefault("heartbeat_interval", 0.5)
    return AsyncWorkerBackend(**kwargs)


def subprocess_env(**overrides):
    """Environment for worker/driver subprocesses that can import repro."""
    from repro.exp.distributed import worker_environment

    return worker_environment(overrides)


def execution_counts(log_path):
    """Per-content-key started-execution counts from the probe file."""
    text = pathlib.Path(log_path).read_text(encoding="utf-8")
    return Counter(line for line in text.splitlines() if line)


class TestParseBatch:
    def test_defaults_and_integers(self):
        assert parse_batch(None) == (1, False)
        assert parse_batch(1) == (1, False)
        assert parse_batch(4) == (4, False)
        assert parse_batch("16") == (16, False)

    def test_adaptive(self):
        assert parse_batch("adaptive") == (DEFAULT_BATCH_CAP, True)
        assert parse_batch("adaptive:8") == (8, True)

    def test_rejects_garbage(self):
        for bad in (0, -2, "0", "adaptive:0", "adaptive:x", "many", "4.5",
                    "adaptively", True):
            with pytest.raises(ValueError):
                parse_batch(bad)

    def test_backend_validates_batch(self):
        with pytest.raises(ValueError):
            AsyncWorkerBackend(num_workers=1, batch="bogus")
        with pytest.raises(ValueError):
            AsyncWorkerBackend(num_workers=1, batch=0)


class TestAdaptiveBatchSizer:
    def test_starts_at_one(self):
        assert AdaptiveBatchSizer(cap=16).size == 1

    def test_sub_second_specs_grow_to_the_cap(self):
        sizer = AdaptiveBatchSizer(cap=16)
        sizes = []
        for _ in range(8):
            sizer.record(0.05)
            sizes.append(sizer.size)
        assert sizes[-1] == 16
        # Growth is bounded to doubling per observation: 2, 4, 8, 16 ...
        assert sizes[:4] == [2, 4, 8, 16]

    def test_long_specs_keep_fine_grained_retries(self):
        sizer = AdaptiveBatchSizer(cap=16)
        for _ in range(5):
            sizer.record(10.0)
        assert sizer.size == 1

    def test_slowdown_shrinks_immediately(self):
        sizer = AdaptiveBatchSizer(cap=16)
        for _ in range(6):
            sizer.record(0.01)
        assert sizer.size == 16
        sizer.record(60.0)  # one pathological spec: back off at once
        assert sizer.size == 1

    def test_cap_is_respected(self):
        sizer = AdaptiveBatchSizer(cap=3)
        for _ in range(10):
            sizer.record(0.001)
        assert sizer.size == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBatchSizer(cap=0)
        with pytest.raises(ValueError):
            AdaptiveBatchSizer(target_seconds=0.0)


class TestMakeNamedBackendBatch:
    def test_async_and_multihost_receive_the_knob(self):
        backend = make_named_backend("async", workers=2, batch=4)
        assert (backend.batch_cap, backend.batch_adaptive) == (4, False)
        backend = make_named_backend("async", workers=2, batch="adaptive:8")
        assert (backend.batch_cap, backend.batch_adaptive) == (8, True)
        backend = make_named_backend(
            "multihost", hosts="local0:1", batch="adaptive"
        )
        assert isinstance(backend, MultiHostBackend)
        assert (backend.batch_cap, backend.batch_adaptive) == (
            DEFAULT_BATCH_CAP, True
        )

    def test_pool_maps_batch_onto_chunksize(self):
        backend = make_named_backend("pool", workers=2, batch=4)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.chunksize == 4
        backend = make_named_backend("auto", workers=2, batch=8)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.chunksize == 8

    def test_serial_accepts_and_ignores_batch(self):
        assert isinstance(
            make_named_backend("serial", batch=16), SerialBackend
        )
        assert isinstance(make_named_backend("auto", batch=16), SerialBackend)

    def test_invalid_batch_rejected_for_every_name(self):
        for name in ("serial", "pool", "async"):
            with pytest.raises(ValueError):
                make_named_backend(name, workers=2, batch="bogus")
        with pytest.raises(ValueError):
            make_named_backend("multihost", hosts="local0:1", batch="bogus")


class TestBatchedDispatchProtocol:
    """Protocol-level run_batch behaviour against a real worker process."""

    def test_hello_advertises_batch_and_run_batch_streams_answers(self):
        specs = [small_spec(), small_spec(benchmark="vector-operation")]
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as server:
            server.bind(("127.0.0.1", 0))
            server.listen(1)
            port = server.getsockname()[1]
            worker = subprocess.Popen(
                [sys.executable, "-m", "repro.exp.worker",
                 "--connect", "127.0.0.1", str(port)],
                env=subprocess_env(),
            )
            try:
                server.settimeout(30.0)
                connection, _ = server.accept()
                with connection, \
                        connection.makefile("rb") as reader, \
                        connection.makefile("wb") as writer:
                    hello = protocol.read_frame(reader)
                    assert hello["type"] == "hello"
                    assert hello["protocol"] == protocol.PROTOCOL_VERSION >= 3
                    assert hello["batch"] is True
                    protocol.write_frame(writer, {
                        "type": "run_batch",
                        "jobs": [
                            {"job": index, "spec": spec.to_dict()}
                            for index, spec in enumerate(specs)
                        ],
                    })
                    # One result frame per job, in batch order: the per-spec
                    # acknowledgements batching's requeue logic relies on.
                    for index, spec in enumerate(specs):
                        message = protocol.read_frame(reader)
                        assert message["type"] == "result"
                        assert message["job"] == index
                        local = deterministic_fields(run_spec(spec))
                        remote = dict(message["result"])
                        remote.pop("wall_seconds")
                        assert remote == local
                    protocol.write_frame(writer, {"type": "shutdown"})
                assert worker.wait(timeout=30) == 0
            finally:
                if worker.poll() is None:
                    worker.kill()
                    worker.wait()


class TestBatchedEquivalence:
    @pytest.mark.parametrize("batch", BATCH_MODES)
    def test_async_store_byte_identical_to_serial(self, tmp_path, batch):
        # Acceptance criterion: same bytes for every batch mode.
        specs = unique_grid(8)
        run_experiments(specs, backend=SerialBackend(),
                        store=ResultStore(tmp_path / "serial"))
        run_experiments(specs, backend=fast_backend(batch=batch),
                        store=ResultStore(tmp_path / "async"))
        serial_bytes = store_result_bytes(tmp_path / "serial")
        assert serial_bytes  # non-vacuous
        assert serial_bytes == store_result_bytes(tmp_path / "async")

    @pytest.mark.parametrize("batch", (4, "adaptive"))
    def test_multihost_store_byte_identical_to_serial(self, tmp_path, batch):
        specs = unique_grid(6)
        run_experiments(specs, backend=SerialBackend(),
                        store=ResultStore(tmp_path / "serial"))
        backend = MultiHostBackend(
            "local0:1,local1:1", heartbeat_interval=0.5, batch=batch,
        )
        run_experiments(specs, backend=backend,
                        store=ResultStore(tmp_path / "multihost"))
        serial_bytes = store_result_bytes(tmp_path / "serial")
        assert serial_bytes
        assert serial_bytes == store_result_bytes(tmp_path / "multihost")
        assert backend.stats.get("batch_frames", 0) >= 1

    def test_batching_actually_batches(self):
        specs = unique_grid(8)
        backend = fast_backend(num_workers=1, batch=4)
        backend.run(specs)
        assert backend.stats["dispatch_frames"] == 2
        assert backend.stats["batch_frames"] == 2
        assert backend.stats["max_batch"] == 4

    def test_fixed_batch_does_not_starve_sibling_slots(self):
        # A fixed batch larger than the grid must not let the first slot
        # swallow everything while its siblings idle: the drain is capped at
        # the slot's fair share of the remaining work.
        specs = unique_grid(12)
        backend = fast_backend(num_workers=3, batch=16)
        backend.run(specs)
        assert backend.stats["max_batch"] <= 4  # ceil(12 / 3)
        assert backend.stats["spawns"] == 3  # every slot actually worked

    def test_fair_share_follows_surviving_slots(self):
        # Retired slots (quarantined hosts, crash-looped spawns) must not
        # shrink the survivors' batches for the rest of the run.
        backend = fast_backend(num_workers=4, batch=16)
        backend._live_slots = 4
        assert backend._batch_limit(16) == 4
        backend._live_slots = 2  # two slots retired mid-run
        assert backend._batch_limit(16) == 8
        backend._live_slots = 0  # defensive fallback to the configured total
        assert backend._batch_limit(16) == 4

    def test_adaptive_sizer_engages_for_cheap_specs(self):
        specs = unique_grid(10)
        backend = fast_backend(num_workers=1, batch="adaptive")
        backend.run(specs)
        # Starts at 1, then grows: strictly fewer dispatches than specs.
        assert backend.stats["max_batch"] > 1
        assert backend.stats["dispatch_frames"] < len(specs)

    def test_acked_specs_execute_exactly_once_without_faults(self, tmp_path):
        log = tmp_path / "execlog"
        specs = unique_grid(8)
        backend = fast_backend(batch=4, worker_env={EXEC_LOG_ENV: str(log)})
        backend.run(specs)
        counts = execution_counts(log)
        assert set(counts) == {spec.content_key() for spec in specs}
        assert all(count == 1 for count in counts.values())


class TestRoundTripAmortisation:
    """Batching amortises frame round-trips under simulated link latency."""

    DELAY = 0.25  # big enough that the saving dwarfs CI scheduling jitter
    SPECS = 8

    def _measure(self, batch):
        specs = unique_grid(self.SPECS)
        backend = AsyncWorkerBackend(
            num_workers=1,
            heartbeat_interval=30.0,  # no ping frames during the run
            batch=batch,
            worker_env={DELAY_ENV: str(self.DELAY)},
        )
        started = time.monotonic()
        results = backend.run(specs)
        wall = time.monotonic() - started
        return results, backend.stats, wall

    def test_batching_reduces_frames_and_wall_clock(self):
        serial_results, serial_stats, serial_wall = self._measure(1)
        batched_results, batched_stats, batched_wall = self._measure(4)
        for left, right in zip(serial_results, batched_results):
            assert deterministic_fields(left) == deterministic_fields(right)
        # Acceptance criterion: >= 2x dispatch-frame reduction at batch >= 4
        # (it is exactly 4x here: 8 run frames versus 2 run_batch frames).
        assert serial_stats["dispatch_frames"] == self.SPECS
        assert batched_stats["dispatch_frames"] * 2 <= serial_stats[
            "dispatch_frames"
        ]
        # Wall-clock: per-spec dispatch pays a read delay per run frame that
        # batching avoids (6 frames * 0.25 s = 1.5 s here); assert with
        # generous slack so a loaded CI host cannot flake the comparison.
        saved = (serial_stats["dispatch_frames"]
                 - batched_stats["dispatch_frames"]) * self.DELAY
        assert serial_wall - batched_wall > saved * 0.3, (
            f"serial {serial_wall:.2f}s vs batched {batched_wall:.2f}s "
            f"(expected >= {saved * 0.3:.2f}s saved)"
        )


class TestPartialBatchFaultInjection:
    def test_sigkill_mid_batch_requeues_only_unacked_specs(self, tmp_path):
        # One worker, one batch holding the entire grid.  The fault hook
        # SIGKILLs the worker when it starts the third spec: the first two
        # answers were already streamed (acknowledged), so only the dying
        # spec and the ones behind it may re-run.
        specs = unique_grid(8)
        keys = [spec.content_key() for spec in specs]
        target = keys[2]
        flag = tmp_path / "died-once"
        log = tmp_path / "execlog"
        backend = fast_backend(
            num_workers=1,
            batch=len(specs),
            worker_env={
                FAULT_ENV: f"{target[:16]}:{flag}",
                EXEC_LOG_ENV: str(log),
            },
        )
        run_experiments(specs, backend=backend,
                        store=ResultStore(tmp_path / "batched"))
        assert flag.exists(), "the fault hook never fired"
        assert backend.stats.get("worker_deaths", 0) == 1
        # Exactly the unacknowledged tail of the batch was requeued...
        assert backend.stats.get("requeues", 0) == len(specs) - 2
        counts = execution_counts(log)
        # ... the acknowledged specs never ran again ...
        assert counts[keys[0]] == 1
        assert counts[keys[1]] == 1
        # ... the dying spec ran twice (killed mid-first-attempt), the rest
        # of the tail was dispatched-but-unstarted and ran once.
        assert counts[target] == 2
        assert sum(counts.values()) == len(specs) + 1
        # And the store is byte-identical to a serial run regardless.
        run_experiments(specs, backend=SerialBackend(),
                        store=ResultStore(tmp_path / "serial"))
        assert (store_result_bytes(tmp_path / "batched")
                == store_result_bytes(tmp_path / "serial"))

    def test_poisonous_spec_does_not_burn_cobatched_retry_budgets(
        self, tmp_path
    ):
        # A spec that reliably kills its worker (die-always fault) exhausts
        # *its own* max_retries, not those of the specs co-batched behind
        # it: jobs execute in dispatch order, so only the first
        # unacknowledged job of a dead worker's batch was ever executing.
        specs = unique_grid(8)
        target = specs[0].content_key()
        flag = tmp_path / "crash-always"
        backend = fast_backend(
            num_workers=1,
            batch=8,
            max_retries=1,
            spawn_retries=100,
            worker_env={FAULT_ENV: f"{target[:16]}:{flag}:always"},
        )
        outcomes = backend.run_outcomes(specs)
        assert flag.exists(), "the fault hook never fired"
        assert isinstance(outcomes[0], ExperimentFailure)
        assert outcomes[0].error_type == "WorkerDied"
        assert outcomes[0].attempts == 2  # max_retries=1 exhausted by itself
        # Every co-batched spec survived with its retry budget intact.
        reference = SerialBackend().run(specs[1:])
        for left, right in zip(reference, outcomes[1:]):
            assert deterministic_fields(left) == deterministic_fields(right)

    def test_mid_batch_kill_on_multihost_converges(self, tmp_path):
        specs = unique_grid(6)
        target = specs[0].content_key()
        flag = tmp_path / "died-once"
        backend = MultiHostBackend(
            "local0:1,local1:1",
            heartbeat_interval=0.5,
            batch=4,
            worker_env={FAULT_ENV: f"{target[:16]}:{flag}"},
        )
        run_experiments(specs, backend=backend,
                        store=ResultStore(tmp_path / "multihost"))
        assert flag.exists(), "the fault hook never fired"
        assert backend.stats.get("worker_deaths", 0) >= 1
        assert backend.stats.get("requeues", 0) >= 1
        run_experiments(specs, backend=SerialBackend(),
                        store=ResultStore(tmp_path / "serial"))
        assert (store_result_bytes(tmp_path / "multihost")
                == store_result_bytes(tmp_path / "serial"))


BATCHED_SIGINT_DRIVER = textwrap.dedent("""
    import os, pathlib, signal, sys, threading, time
    from repro.exp import AsyncWorkerBackend, ExperimentSpec, ResultStore

    store_dir = sys.argv[1]
    specs = [
        ExperimentSpec("cholesky", num_threads=2, scale=0.2, trace_seed=seed)
        for seed in range(1, 13)
    ]
    backend = AsyncWorkerBackend(
        num_workers=1, heartbeat_interval=0.5, batch=len(specs),
        store=ResultStore(store_dir),
    )

    def interrupt_once_streaming():
        # Fire SIGINT as soon as results stream into the store while the
        # one big batch is still in flight on the single worker.
        while True:
            entries = [p for p in pathlib.Path(store_dir).rglob("*.json")
                       if not p.name.startswith(".")]
            if len(entries) >= 3:
                os.kill(os.getpid(), signal.SIGINT)
                return
            time.sleep(0.02)

    threading.Thread(target=interrupt_once_streaming, daemon=True).start()
    try:
        backend.run(specs)
    except KeyboardInterrupt:
        print("INTERRUPTED", flush=True)
        sys.exit(3)
    print("COMPLETED", flush=True)
""")


class TestBatchedSigintStreaming:
    def test_acked_results_persist_across_sigint_mid_batch(self, tmp_path):
        # The fault-model invariant must survive batching: results are
        # finished (and streamed into the store) as each ack arrives, not
        # when the whole batch resolves — so an interrupt mid-batch keeps
        # every acknowledged experiment.  The driver's watcher thread can
        # only ever fire because of that: it waits for entries to appear
        # while the single worker still holds the one 12-spec batch.
        store_dir = tmp_path / "store"
        completed = subprocess.run(
            [sys.executable, "-c", BATCHED_SIGINT_DRIVER, str(store_dir)],
            env=subprocess_env(), capture_output=True, text=True, timeout=300,
        )
        assert completed.returncode == 3, (
            completed.stdout + completed.stderr
        )
        assert "INTERRUPTED" in completed.stdout
        entries = [p for p in pathlib.Path(store_dir).rglob("*.json")
                   if not p.name.startswith(".")]
        assert len(entries) >= 3  # the acked prefix survived the interrupt
        for path in entries:
            payload = json.loads(path.read_text(encoding="utf-8"))
            assert "result" in payload and "spec" in payload


class TestNegotiationFallback:
    def test_v2_peer_is_dispatched_spec_at_a_time(self):
        # A worker capped at protocol 2 advertises no batch capability; the
        # supervisor must fall back to one run frame per spec — pipelined,
        # never a run_batch frame — and converge identically.
        specs = unique_grid(6)
        backend = fast_backend(
            num_workers=1, batch=8, worker_env={COMPAT_ENV: "2"},
        )
        results = backend.run(specs)
        assert backend.stats.get("batch_frames", 0) == 0
        assert backend.stats["dispatch_frames"] == len(specs)
        reference = SerialBackend().run(specs)
        for left, right in zip(reference, results):
            assert deterministic_fields(left) == deterministic_fields(right)

    def test_v2_hello_omits_the_capability(self):
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as server:
            server.bind(("127.0.0.1", 0))
            server.listen(1)
            port = server.getsockname()[1]
            worker = subprocess.Popen(
                [sys.executable, "-m", "repro.exp.worker",
                 "--connect", "127.0.0.1", str(port)],
                env=subprocess_env(**{COMPAT_ENV: "2"}),
            )
            try:
                server.settimeout(30.0)
                connection, _ = server.accept()
                with connection, \
                        connection.makefile("rb") as reader, \
                        connection.makefile("wb") as writer:
                    hello = protocol.read_frame(reader)
                    assert hello["protocol"] == 2
                    assert "batch" not in hello
                    protocol.write_frame(writer, {"type": "shutdown"})
                assert worker.wait(timeout=30) == 0
            finally:
                if worker.poll() is None:
                    worker.kill()
                    worker.wait()


class TestCompressionThreshold:
    """Frame compression around the 512-byte threshold (satellite)."""

    @staticmethod
    def _frame_of_exact_payload_size(size):
        # {"b":"xxx...x"} -> payload length is len(filler) + 8 overhead.
        filler = "x" * (size - 8)
        message = {"b": filler}
        raw = json.dumps(message, separators=(",", ":")).encode("utf-8")
        assert len(raw) == size
        return message

    def test_below_threshold_never_compressed(self):
        for size in range(500, protocol.COMPRESS_MIN_BYTES):
            message = self._frame_of_exact_payload_size(size)
            frame = protocol.encode_frame(message, compress=True)
            (word,) = struct.unpack(">I", frame[:4])
            assert not word & 0x80000000, f"size {size} was compressed"
            assert protocol.read_frame(io.BytesIO(frame)) == message

    def test_at_and_above_threshold_compressible_payloads_shrink(self):
        for size in range(protocol.COMPRESS_MIN_BYTES, 525):
            message = self._frame_of_exact_payload_size(size)
            frame = protocol.encode_frame(message, compress=True)
            (word,) = struct.unpack(">I", frame[:4])
            assert word & 0x80000000, f"size {size} stayed raw"
            assert len(frame) < 4 + size
            assert protocol.read_frame(io.BytesIO(frame)) == message

    def test_incompressible_payloads_stay_raw(self, monkeypatch):
        # zlib cannot shrink these (simulated: JSON text of high-entropy
        # data still deflates, so force the no-win case): the encoder must
        # ship the raw form, and the round trip stays exact.
        monkeypatch.setattr(
            protocol.zlib, "compress", lambda data, level=6: data + b"pad"
        )
        for size in range(500, 525):
            message = self._frame_of_exact_payload_size(size)
            frame = protocol.encode_frame(message, compress=True)
            (word,) = struct.unpack(">I", frame[:4])
            assert not word & 0x80000000
            assert protocol.read_frame(io.BytesIO(frame)) == message

    if HAVE_HYPOTHESIS:

        @settings(max_examples=25, deadline=None, derandomize=True)
        @given(size=st.integers(min_value=500, max_value=524),
               compress=st.booleans())
        def test_round_trip_exact_around_threshold(self, size, compress):
            message = self._frame_of_exact_payload_size(size)
            frame = protocol.encode_frame(message, compress=compress)
            assert protocol.read_frame(io.BytesIO(frame)) == message
            if not compress or size < protocol.COMPRESS_MIN_BYTES:
                (word,) = struct.unpack(">I", frame[:4])
                assert not word & 0x80000000


class TestCliBatch:
    # Lives here (not tests/test_cli.py) so the subprocess-spawning CLI path
    # runs inside CI's hard-timeout batching step, not the tier-1 step.
    def test_compare_with_batch_flag(self, capsys):
        from repro.cli import main

        code = main([
            "compare", "swaptions", "--scale", "0.004", "--threads", "2",
            "--policy", "lazy", "--backend", "async", "--workers", "2",
            "--batch", "4",
        ])
        assert code == 0
        assert "execution-time error" in capsys.readouterr().out

    def test_invalid_batch_is_a_usage_error(self, capsys):
        from repro.cli import main

        code = main([
            "compare", "swaptions", "--scale", "0.004", "--threads", "2",
            "--batch", "bogus",
        ])
        assert code == 2
        assert "batch" in capsys.readouterr().err


class TestDispatchBenchScript:
    def test_smoke_records_frame_reduction(self, tmp_path):
        output = tmp_path / "BENCH_dispatch.json"
        completed = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "dispatch_bench.py"),
             "--smoke", "--output", str(output)],
            env=subprocess_env(), capture_output=True, text=True, timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        payload = json.loads(output.read_text(encoding="utf-8"))
        (entry,) = payload["entries"]
        modes = {mode["batch"]: mode for mode in entry["modes"]}
        assert set(modes) == {"1", "4", "16", "adaptive"}
        assert modes["1"]["frames_per_spec"] == 1.0
        # Acceptance criterion, as recorded in BENCH_dispatch.json: >= 2x
        # frame reduction for sub-second specs at batch >= 4 (exactly 4x).
        assert modes["4"]["frames_per_spec"] * 2 <= modes["1"][
            "frames_per_spec"
        ]
        assert modes["16"]["frames_per_spec"] <= modes["4"]["frames_per_spec"]
        for mode in entry["modes"]:
            assert mode["specs_per_s"] > 0

    def test_entries_accumulate_as_a_trajectory(self, tmp_path):
        output = tmp_path / "BENCH_dispatch.json"
        for _ in range(2):
            completed = subprocess.run(
                [sys.executable,
                 str(REPO_ROOT / "scripts" / "dispatch_bench.py"),
                 "--smoke", "--specs", "4", "--batches", "1,4",
                 "--output", str(output)],
                env=subprocess_env(), capture_output=True, text=True,
                timeout=300,
            )
            assert completed.returncode == 0, completed.stderr
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert len(payload["entries"]) == 2


class TestMultihostDemoScript:
    def test_smoke_sweep_passes_with_subset_and_batch(self, tmp_path):
        completed = subprocess.run(
            [sys.executable,
             str(REPO_ROOT / "scripts" / "multihost_sweep_demo.py"),
             "--scale", "0.002",
             "--benchmarks", "swaptions,vector-operation",
             "--threads-highperf", "1", "--threads-lowpower", "1",
             "--hosts", "local0:1,local1:1", "--batch", "4",
             "--keep", str(tmp_path / "stores")],
            env=subprocess_env(), capture_output=True, text=True, timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert "PASS" in completed.stdout
        # --keep persisted both stores for the digest comparison path.
        assert (tmp_path / "stores" / "serial").is_dir()
        assert (tmp_path / "stores" / "multihost").is_dir()
        assert store_result_bytes(tmp_path / "stores" / "serial") == \
            store_result_bytes(tmp_path / "stores" / "multihost")

    def test_unknown_benchmark_rejected_before_any_sweep(self):
        # Whitespace is stripped and typos die at argparse level, not deep
        # inside the serial sweep with a registry KeyError.
        completed = subprocess.run(
            [sys.executable,
             str(REPO_ROOT / "scripts" / "multihost_sweep_demo.py"),
             "--benchmarks", "swaptions, no-such-bench"],
            env=subprocess_env(), capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 2
        assert "unknown benchmark" in completed.stderr

    def test_invalid_batch_rejected_before_any_sweep(self):
        completed = subprocess.run(
            [sys.executable,
             str(REPO_ROOT / "scripts" / "multihost_sweep_demo.py"),
             "--benchmarks", "swaptions", "--batch", "bogus"],
            env=subprocess_env(), capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 2
        assert "batch" in completed.stderr

    def test_bad_host_budget_fails(self):
        completed = subprocess.run(
            [sys.executable,
             str(REPO_ROOT / "scripts" / "multihost_sweep_demo.py"),
             "--scale", "0.002", "--benchmarks", "swaptions",
             "--hosts", "local0:0"],
            env=subprocess_env(), capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode != 0


if HAVE_HYPOTHESIS:

    GRID_POINTS = st.tuples(
        st.sampled_from(("swaptions", "vector-operation", "histogram")),
        st.integers(min_value=1, max_value=2),
        st.sampled_from((0, 1, 2)),  # index into CONFIG_CHOICES
    )
    CONFIG_CHOICES = (None, lazy_config(), periodic_config())

    class TestBatchGridEquivalence:
        """Hypothesis: any batch mode x any backend -> the same store bytes."""

        @settings(
            max_examples=3, deadline=None, derandomize=True,
            suppress_health_check=[HealthCheck.too_slow],
        )
        @given(
            grid=st.lists(GRID_POINTS, min_size=1, max_size=2, unique=True),
            batch=st.sampled_from(BATCH_MODES),
        )
        def test_random_grids_equivalent_across_backends_and_batches(
            self, grid, batch
        ):
            specs = []
            for benchmark, threads, config_index in grid:
                spec = ExperimentSpec(
                    benchmark, num_threads=threads, scale=SCALE,
                    config=CONFIG_CHOICES[config_index],
                )
                specs.append(spec)
                specs.append(spec.baseline())
            backends = (
                make_named_backend("serial", batch=batch),
                make_named_backend("pool", workers=2, batch=batch),
                fast_backend(batch=batch),
                MultiHostBackend(
                    "local0:1,local1:1", heartbeat_interval=0.5, batch=batch,
                ),
            )
            snapshots = []
            for backend in backends:
                with tempfile.TemporaryDirectory() as directory:
                    run_experiments(specs, backend=backend,
                                    store=ResultStore(directory))
                    snapshots.append(store_result_bytes(directory))
            assert snapshots[0]  # non-vacuous
            assert all(snapshot == snapshots[0] for snapshot in snapshots[1:])
