"""Shared fixtures for the test suite.

The fixtures build small, fast traces and simulator configurations so the
whole suite runs in well under a minute while still exercising every layer of
the stack (traces, runtime, architecture, simulator, TaskPoint, analysis).
"""

from __future__ import annotations

import random

import pytest

from repro.arch.config import high_performance_config, low_power_config
from repro.trace.generator import TraceBuilder
from repro.trace.patterns import AddressSpaceAllocator
from repro.trace.records import MemoryEvent
from repro.trace.trace import ApplicationTrace
from repro.workloads.registry import get_workload


def build_uniform_trace(
    name: str = "uniform",
    num_instances: int = 60,
    task_type: str = "work",
    instructions: int = 8_000,
    events_per_instance: int = 8,
    seed: int = 0,
) -> ApplicationTrace:
    """A trace of identical, independent task instances of one type."""
    builder = TraceBuilder(name=name, seed=seed)
    region = builder.allocator.allocate(8 * 1024 * 1024)
    rng = random.Random(seed)
    for index in range(num_instances):
        events = [
            MemoryEvent(address=region.base + ((index * 64 + j) * 64) % region.size, weight=10)
            for j in range(events_per_instance)
        ]
        builder.add_task(task_type, instructions=instructions, memory_events=events)
    return builder.build()


def build_two_type_trace(
    num_instances: int = 80, seed: int = 0, name: str = "two-type"
) -> ApplicationTrace:
    """A trace alternating two task types with different sizes."""
    builder = TraceBuilder(name=name, seed=seed)
    region = builder.allocator.allocate(16 * 1024 * 1024)
    for index in range(num_instances):
        if index % 2 == 0:
            builder.add_task(
                "small",
                instructions=4_000,
                memory_events=[MemoryEvent(address=region.offset(index * 4096), weight=5)],
            )
        else:
            builder.add_task(
                "large",
                instructions=20_000,
                memory_events=[
                    MemoryEvent(address=region.offset(index * 4096 + j * 64), weight=20)
                    for j in range(6)
                ],
            )
    return builder.build()


def build_chain_trace(length: int = 20, name: str = "chain") -> ApplicationTrace:
    """A fully serial trace (each instance depends on the previous one)."""
    builder = TraceBuilder(name=name, seed=0)
    region = builder.allocator.allocate(1024 * 1024)
    previous = None
    for index in range(length):
        deps = [previous] if previous is not None else []
        previous = builder.add_task(
            "stage",
            instructions=5_000,
            memory_events=[MemoryEvent(address=region.offset(index * 64), weight=4)],
            depends_on=deps,
        )
    return builder.build()


@pytest.fixture
def uniform_trace() -> ApplicationTrace:
    """Small single-type trace of independent instances."""
    return build_uniform_trace()


@pytest.fixture
def two_type_trace() -> ApplicationTrace:
    """Small trace with two task types of different sizes."""
    return build_two_type_trace()


@pytest.fixture
def chain_trace() -> ApplicationTrace:
    """Small fully-serial trace."""
    return build_chain_trace()


@pytest.fixture
def high_perf():
    """The Table II high-performance architecture configuration."""
    return high_performance_config()


@pytest.fixture
def low_power():
    """The Table II low-power architecture configuration."""
    return low_power_config()


@pytest.fixture
def allocator() -> AddressSpaceAllocator:
    """A fresh address-space allocator."""
    return AddressSpaceAllocator()


@pytest.fixture
def small_cholesky_trace() -> ApplicationTrace:
    """A very small cholesky workload trace (real dependency structure)."""
    return get_workload("cholesky").generate(scale=0.004, seed=3)
