"""Unit tests for trace records (memory events, blocks, task records)."""

import pytest

from repro.trace.records import (
    ExecutionBlock,
    MemoryEvent,
    TaskTraceRecord,
    make_record,
)


class TestMemoryEvent:
    def test_defaults(self):
        event = MemoryEvent(address=128)
        assert event.address == 128
        assert event.is_write is False
        assert event.weight == 1
        assert event.shared is False

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MemoryEvent(address=-1)

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            MemoryEvent(address=0, weight=0)

    def test_frozen(self):
        event = MemoryEvent(address=64)
        with pytest.raises(AttributeError):
            event.address = 128


class TestExecutionBlock:
    def test_memory_accesses_sums_weights(self):
        block = ExecutionBlock(
            instructions=100,
            memory_events=(
                MemoryEvent(address=0, weight=3),
                MemoryEvent(address=64, weight=7),
            ),
        )
        assert block.memory_accesses == 10

    def test_negative_instructions_rejected(self):
        with pytest.raises(ValueError):
            ExecutionBlock(instructions=-1)

    def test_list_events_coerced_to_tuple(self):
        block = ExecutionBlock(instructions=1, memory_events=[MemoryEvent(address=0)])
        assert isinstance(block.memory_events, tuple)


class TestTaskTraceRecord:
    def test_block_instruction_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TaskTraceRecord(
                instance_id=0,
                task_type="t",
                instructions=100,
                blocks=[ExecutionBlock(instructions=50)],
            )

    def test_properties(self):
        record = make_record(
            instance_id=3,
            task_type="work",
            instructions=1000,
            memory_events=[MemoryEvent(address=i * 64, weight=2) for i in range(10)],
            blocks_hint=2,
        )
        assert record.instance_id == 3
        assert record.instructions == 1000
        assert sum(b.instructions for b in record.blocks) == 1000
        assert record.memory_accesses == 20
        assert record.detail_events == 10
        assert record.working_set() == 10 * 64
        assert len(list(record.memory_events)) == 10

    def test_make_record_single_block_when_no_events(self):
        record = make_record(instance_id=0, task_type="t", instructions=500)
        assert len(record.blocks) == 1
        assert record.blocks[0].instructions == 500
        assert record.memory_accesses == 0

    def test_make_record_rejects_bad_blocks_hint(self):
        with pytest.raises(ValueError):
            make_record(instance_id=0, task_type="t", instructions=10, blocks_hint=0)

    def test_negative_instance_id_rejected(self):
        with pytest.raises(ValueError):
            TaskTraceRecord(instance_id=-1, task_type="t", instructions=0)

    def test_depends_on_coerced_to_tuple(self):
        record = TaskTraceRecord(
            instance_id=2, task_type="t", instructions=0, depends_on=[0, 1]
        )
        assert record.depends_on == (0, 1)

    def test_working_set_counts_distinct_lines(self):
        events = [MemoryEvent(address=0), MemoryEvent(address=32), MemoryEvent(address=64)]
        record = make_record(0, "t", 100, memory_events=events, blocks_hint=1)
        # Addresses 0 and 32 share a 64-byte line.
        assert record.working_set() == 2 * 64
