"""Unit tests for ApplicationTrace: validation, statistics, graph queries."""

import pytest

from repro.trace.records import MemoryEvent, make_record
from repro.trace.trace import ApplicationTrace, TraceValidationError, merge_traces

from tests.conftest import build_chain_trace, build_two_type_trace, build_uniform_trace


def _record(instance_id, task_type="t", instructions=100, depends_on=()):
    return make_record(instance_id, task_type, instructions, depends_on=depends_on)


class TestValidation:
    def test_dense_ids_required(self):
        with pytest.raises(TraceValidationError):
            ApplicationTrace(name="bad", records=[_record(1)])

    def test_forward_dependency_rejected(self):
        with pytest.raises(TraceValidationError):
            ApplicationTrace(name="bad", records=[_record(0, depends_on=(0,))])

    def test_dependency_on_later_instance_rejected(self):
        records = [_record(0), _record(1, depends_on=(1,))]
        with pytest.raises(TraceValidationError):
            ApplicationTrace(name="bad", records=records)

    def test_valid_trace_accepted(self):
        trace = ApplicationTrace(
            name="ok", records=[_record(0), _record(1, depends_on=(0,))]
        )
        assert len(trace) == 2


class TestQueries:
    def test_task_types_order_of_first_appearance(self):
        trace = build_two_type_trace(num_instances=6)
        assert trace.task_types == ("small", "large")

    def test_instances_of(self):
        trace = build_two_type_trace(num_instances=10)
        assert len(trace.instances_of("small")) == 5
        assert len(trace.instances_of("large")) == 5
        assert trace.instances_of("missing") == []

    def test_dependents_forward_map(self):
        trace = build_chain_trace(length=4)
        forward = trace.dependents()
        assert forward[0] == [1]
        assert forward[1] == [2]
        assert forward[3] == []

    def test_iteration_and_indexing(self):
        trace = build_uniform_trace(num_instances=5)
        assert [record.instance_id for record in trace] == [0, 1, 2, 3, 4]
        assert trace[3].instance_id == 3


class TestStatistics:
    def test_counts(self):
        trace = build_two_type_trace(num_instances=10)
        stats = trace.statistics()
        assert stats.num_task_instances == 10
        assert stats.num_task_types == 2
        assert stats.instances_per_type == {"small": 5, "large": 5}
        assert stats.total_instructions == 5 * 4_000 + 5 * 20_000

    def test_dominant_type_and_share(self):
        trace = build_two_type_trace(num_instances=10)
        stats = trace.statistics()
        assert stats.dominant_task_type == "large"
        assert stats.instruction_share("large") == pytest.approx(100_000 / 120_000)
        assert stats.instruction_share("missing") == 0.0

    def test_critical_path_serial_chain(self):
        trace = build_chain_trace(length=7)
        assert trace.critical_path_length() == 7
        assert trace.max_parallelism() == 1

    def test_critical_path_parallel(self):
        trace = build_uniform_trace(num_instances=9)
        assert trace.critical_path_length() == 1
        assert trace.max_parallelism() == 9


class TestMergeTraces:
    def test_merge_renumbers_and_serialises_phases(self):
        first = build_uniform_trace(num_instances=3, name="a")
        second = build_uniform_trace(num_instances=2, name="b")
        merged = merge_traces("merged", [first, second])
        assert len(merged) == 5
        # First instance of the second phase depends on the last of the first.
        assert merged[3].depends_on == (2,)
        merged.validate()

    def test_merge_preserves_internal_dependencies(self):
        chain = build_chain_trace(length=3)
        parallel = build_uniform_trace(num_instances=2)
        merged = merge_traces("merged", [chain, parallel])
        assert merged[2].depends_on == (1,)
        assert merged[3].depends_on == (2,)
