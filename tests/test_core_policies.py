"""Unit tests for the sampling policies."""

import pytest

from repro.core.policies import (
    AdaptiveSamplingPolicy,
    LazySamplingPolicy,
    PeriodicSamplingPolicy,
    make_policy,
)


class TestPeriodicPolicy:
    def test_triggers_at_period(self):
        policy = PeriodicSamplingPolicy(period=10)
        assert not policy.should_resample(9)
        assert policy.should_resample(10)
        assert policy.should_resample(11)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PeriodicSamplingPolicy(period=0)

    def test_name(self):
        assert PeriodicSamplingPolicy(5).name == "periodic"


class TestLazyPolicy:
    def test_never_triggers(self):
        policy = LazySamplingPolicy()
        assert not policy.should_resample(0)
        assert not policy.should_resample(10 ** 9)

    def test_name(self):
        assert LazySamplingPolicy().name == "lazy"


class TestAdaptivePolicy:
    def test_period_shrinks_on_high_dispersion(self):
        policy = AdaptiveSamplingPolicy(initial_period=200, min_period=50,
                                        max_period=800, target_dispersion=0.05)
        policy.observe_dispersion(0.30)
        assert policy.period == 100
        policy.observe_dispersion(0.30)
        assert policy.period == 50
        policy.observe_dispersion(0.30)
        assert policy.period == 50  # clamped at min

    def test_period_grows_on_low_dispersion(self):
        policy = AdaptiveSamplingPolicy(initial_period=200, max_period=300)
        policy.observe_dispersion(0.01)
        assert policy.period == 251
        policy.observe_dispersion(0.01)
        assert policy.period == 300  # clamped at max

    def test_should_resample_uses_current_period(self):
        policy = AdaptiveSamplingPolicy(initial_period=100, min_period=10)
        assert not policy.should_resample(60)
        policy.observe_dispersion(1.0)
        assert policy.should_resample(60)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveSamplingPolicy(initial_period=10, min_period=20, max_period=30)
        with pytest.raises(ValueError):
            AdaptiveSamplingPolicy(target_dispersion=0.0)


class TestMakePolicy:
    def test_none_gives_lazy(self):
        assert isinstance(make_policy(None), LazySamplingPolicy)

    def test_integer_gives_periodic(self):
        policy = make_policy(250)
        assert isinstance(policy, PeriodicSamplingPolicy)
        assert policy.period == 250
