"""Quickstart: sampled simulation of one task-based benchmark.

This example walks through the core TaskPoint workflow:

1. generate a task-based application trace (the cholesky benchmark),
2. run a full detailed simulation of it on the high-performance architecture,
3. run a TaskPoint-sampled simulation of the same workload, and
4. compare predicted execution time and simulation cost.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    compare_with_detailed,
    get_workload,
    high_performance_config,
    periodic_config,
)


def main() -> None:
    # 1. Generate the workload trace.  ``scale`` shrinks the paper's 19,600
    #    task instances to a laptop-friendly size; the task structure
    #    (4 task types, wavefront dependencies) is preserved.
    workload = get_workload("cholesky")
    trace = workload.generate(scale=0.05, seed=1)
    stats = trace.statistics()
    print(f"benchmark              : {trace.name}")
    print(f"task types             : {stats.num_task_types} {trace.task_types}")
    print(f"task instances         : {stats.num_task_instances}")
    print(f"dynamic instructions   : {stats.total_instructions:,}")
    print(f"critical path length   : {trace.critical_path_length()} instances")
    print()

    # 2.-4. Full detailed simulation versus TaskPoint periodic sampling
    #       (W=2, H=4, P=250 -- the paper's parameters).
    comparison = compare_with_detailed(
        trace,
        num_threads=8,
        architecture=high_performance_config(),
        config=periodic_config(),
    )
    detailed = comparison.detailed
    sampled = comparison.sampled
    taskpoint = comparison.taskpoint_stats

    print("full detailed simulation")
    print(f"  predicted execution time : {detailed.total_cycles:,.0f} cycles")
    print(f"  simulation cost          : {detailed.cost.total_units:,.0f} units")
    print()
    print("TaskPoint sampled simulation (periodic, P=250)")
    print(f"  predicted execution time : {sampled.total_cycles:,.0f} cycles")
    print(f"  simulation cost          : {sampled.cost.total_units:,.0f} units")
    print(f"  warm-up instances        : {taskpoint.warmup_instances}")
    print(f"  valid samples            : {taskpoint.valid_samples}")
    print(f"  fast-forwarded instances : {taskpoint.fast_forwarded}")
    print(f"  resampling intervals     : {taskpoint.resamples}")
    print()
    print(f"execution-time error : {comparison.error_percent:.2f} %")
    print(f"simulation speedup   : {comparison.speedup:.1f}x")
    if comparison.wall_speedup:
        print(f"wall-clock speedup   : {comparison.wall_speedup:.1f}x")


if __name__ == "__main__":
    main()
