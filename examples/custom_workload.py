"""Building and sampling a custom task-based application.

The library is not limited to the 19 paper benchmarks: any task-based
program can be described with the trace builder (or the data-clause graph
builder) and simulated with or without TaskPoint.  This example builds a
small blocked LU-style solver by hand, declaring tasks with ``in``/``out``
data clauses exactly like an OmpSs/OpenMP-tasks program would, and then
compares detailed and sampled simulation of it.

Run with::

    python examples/custom_workload.py
"""

from __future__ import annotations

import random

from repro import compare_with_detailed, lazy_config
from repro.runtime.dependencies import TaskGraphBuilder
from repro.trace.generator import TraceBuilder
from repro.trace.patterns import reuse_accesses, strided_accesses


def build_custom_solver(blocks: int = 10, seed: int = 5):
    """Build a blocked solver trace: factor diagonal, update row, update trailing."""
    builder = TraceBuilder("custom-blocked-solver", seed=seed)
    rng = random.Random(seed)
    matrix = builder.allocator.allocate(256 * 1024 * 1024)
    graph = TaskGraphBuilder()
    block_bytes = 256 * 1024

    def block_region(row: int, col: int):
        offset = ((row * blocks + col) * block_bytes) % matrix.size
        return matrix.slice(offset, block_bytes)

    def submit(task_type, instructions, region, reads, writes, reuse=True):
        task_id = builder.next_instance_id
        dependencies = graph.submit(task_id, inputs=reads, outputs=writes)
        if reuse:
            events = reuse_accesses(region, count=10, total_accesses=instructions // 10,
                                    hot_lines=32, write_fraction=0.4, rng=rng)
        else:
            events = strided_accesses(region, count=14, total_accesses=instructions // 8,
                                      write_fraction=0.3, rng=rng)
        return builder.add_task(task_type, instructions=instructions,
                                memory_events=events, depends_on=dependencies)

    for k in range(blocks):
        submit("factor_diagonal", 30_000, block_region(k, k),
               reads=[(k, k)], writes=[(k, k)])
        for j in range(k + 1, blocks):
            submit("update_row", 22_000, block_region(k, j),
                   reads=[(k, k), (k, j)], writes=[(k, j)], reuse=False)
        for i in range(k + 1, blocks):
            for j in range(k + 1, blocks):
                submit("update_trailing", 26_000, block_region(i, j),
                       reads=[(i, k), (k, j), (i, j)], writes=[(i, j)])
    return builder.build()


def main() -> None:
    trace = build_custom_solver(blocks=10)
    stats = trace.statistics()
    print(f"custom workload         : {trace.name}")
    print(f"task types              : {trace.task_types}")
    print(f"task instances          : {stats.num_task_instances}")
    print(f"critical path           : {trace.critical_path_length()} instances")
    print(f"maximum parallelism     : {trace.max_parallelism()} instances")
    print()
    for threads in (4, 16):
        comparison = compare_with_detailed(trace, num_threads=threads,
                                           config=lazy_config())
        print(
            f"{threads:>2} threads: detailed {comparison.detailed.total_cycles:12,.0f} cycles"
            f" | sampled {comparison.sampled.total_cycles:12,.0f} cycles"
            f" | error {comparison.error_percent:5.2f}%"
            f" | speedup {comparison.speedup:6.1f}x"
        )


if __name__ == "__main__":
    main()
