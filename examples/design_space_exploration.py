"""Design-space exploration with lazy sampling.

The paper recommends lazy sampling (P = infinity) for the early phase of
design-space exploration, when a large number of candidate configurations
must be simulated quickly.  This example sweeps reorder-buffer size and
last-level-cache size around the two Table II configurations and ranks the
candidates by predicted execution time — using TaskPoint so the whole sweep
costs a small fraction of detailed simulation.

Run with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import get_workload, high_performance_config, lazy_config, low_power_config
from repro.analysis.reporting import format_table
from repro.core.api import sampled_simulation

BENCHMARKS = ("dense-matrix-multiplication", "vector-operation", "canneal")
NUM_THREADS = 8
SCALE = 0.03


def candidate_architectures():
    """Yield (name, ArchitectureConfig) pairs spanning the design space."""
    high = high_performance_config()
    low = low_power_config()
    yield "high-perf (Table II)", high
    yield "high-perf, small ROB", high.with_core(rob_size=96)
    yield "high-perf, huge ROB", high.with_core(rob_size=256)
    yield "high-perf, 10MB L3", replace(
        high, l3=replace(high.l3, size_bytes=10 * 1024 * 1024)
    )
    yield "low-power (Table II)", low
    yield "low-power, 4-wide", low.with_core(issue_width=4, commit_width=4)


def main() -> None:
    traces = {
        name: get_workload(name).generate(scale=SCALE, seed=7) for name in BENCHMARKS
    }
    rows = []
    total_cost = 0.0
    for label, architecture in candidate_architectures():
        predicted = {}
        for name, trace in traces.items():
            result = sampled_simulation(
                trace,
                num_threads=NUM_THREADS,
                architecture=architecture,
                config=lazy_config(),
            )
            predicted[name] = result.total_cycles
            total_cost += result.cost.total_units
        geomean = 1.0
        for cycles in predicted.values():
            geomean *= cycles
        geomean **= 1.0 / len(predicted)
        rows.append([label] + [predicted[name] for name in BENCHMARKS] + [geomean])

    rows.sort(key=lambda row: row[-1])
    headers = ["architecture"] + [f"{name} [cycles]" for name in BENCHMARKS] + ["geomean"]
    print(f"lazy-sampled design-space exploration, {NUM_THREADS} threads")
    print(format_table(headers, rows))
    print()
    print(f"total simulation cost of the sweep: {total_cost:,.0f} units")
    print("(a single full detailed simulation of one candidate costs more than")
    print(" the entire sampled sweep — that is the point of lazy sampling)")


if __name__ == "__main__":
    main()
