"""Per-task-type IPC variation study (Figures 1 and 5 in miniature).

The paper motivates TaskPoint with the observation that the IPC of task
instances is regular within a task type: box plots of per-instance IPC,
normalized to each type's mean, stay within roughly +/-5% for 15 of the 19
benchmarks, in native execution as well as in detailed simulation.

This example reproduces that analysis for a subset of benchmarks: it runs
the native-execution substitute (detailed simulation plus a system-noise
model) and the plain detailed simulation, prints the box-plot statistics of
both and reports whether the +/-5% classification agrees.

Run with::

    python examples/variation_study.py
"""

from __future__ import annotations

from repro import get_workload
from repro.analysis.native import NativeExecutionModel, native_execution
from repro.analysis.reporting import render_variation_report
from repro.analysis.variation import classification_agreement, ipc_variation
from repro.sim.simulator import simulate

BENCHMARKS = (
    "2d-convolution",
    "dense-matrix-multiplication",
    "canneal",
    "checkSparseLU",
    "dedup",
    "freqmine",
)
NUM_THREADS = 8
SCALE = 0.03


def main() -> None:
    native_reports = {}
    simulated_reports = {}
    for name in BENCHMARKS:
        trace = get_workload(name).generate(scale=SCALE, seed=11)
        native_result = native_execution(
            trace,
            num_threads=NUM_THREADS,
            noise=NativeExecutionModel(seed=11),
        )
        simulated_result = simulate(trace, num_threads=NUM_THREADS)
        native_reports[name] = ipc_variation(native_result)
        simulated_reports[name] = ipc_variation(simulated_result)

    print(render_variation_report(
        native_reports,
        title=f"IPC variation, native-execution substitute, {NUM_THREADS} threads (Fig. 1)",
    ))
    print()
    print(render_variation_report(
        simulated_reports,
        title=f"IPC variation, detailed simulation, {NUM_THREADS} threads (Fig. 5)",
    ))
    print()
    agreement = classification_agreement(native_reports, simulated_reports)
    print(
        f"+/-5% classification agreement between native and simulation: "
        f"{agreement * len(BENCHMARKS):.0f} of {len(BENCHMARKS)} benchmarks"
    )


if __name__ == "__main__":
    main()
